#include "eval/cvt_evaluator.hpp"

namespace gkx::eval {

using xpath::ContextDependence;
using xpath::Expr;

Status CvtEvaluator::Prepare() {
  analysis_ = xpath::Analyze(query());
  const size_t n = static_cast<size_t>(query().num_exprs());
  constant_.assign(n, std::nullopt);
  by_node_.assign(n, {});
  by_context_.assign(n, {});
  table_entries_ = 0;

  if (options_.eager) {
    // Bottom-up pass: expression ids are preorder, so reverse id order
    // visits children before parents. Fill the full context-value table of
    // every node-dependent subexpression; position-dependent tables fill
    // with their meaningful contexts as side effects of predicate loops.
    for (int id = query().num_exprs() - 1; id >= 0; --id) {
      const Expr& expr = query().expr(id);
      switch (analysis_.traits(expr).dependence) {
        case ContextDependence::kNone: {
          auto value = Eval(expr, RootContext(doc()));
          if (!value.ok()) return value.status();
          break;
        }
        case ContextDependence::kNode: {
          for (xml::NodeId v = 0; v < doc().size(); ++v) {
            auto value = Eval(expr, Context{v, 1, 1});
            if (!value.ok()) return value.status();
          }
          break;
        }
        case ContextDependence::kFull:
          break;  // demand-filled
      }
    }
  }
  return Status::Ok();
}

bool CvtEvaluator::LookupMemo(const Expr& expr, const Context& ctx, Value* out) {
  const size_t id = static_cast<size_t>(expr.id());
  switch (analysis_.traits(expr).dependence) {
    case ContextDependence::kNone: {
      if (!constant_[id].has_value()) return false;
      *out = *constant_[id];
      return true;
    }
    case ContextDependence::kNode: {
      auto it = by_node_[id].find(ctx.node);
      if (it == by_node_[id].end()) return false;
      *out = it->second;
      return true;
    }
    case ContextDependence::kFull: {
      auto it = by_context_[id].find(PackContext(ctx));
      if (it == by_context_[id].end()) return false;
      *out = it->second;
      return true;
    }
  }
  GKX_CHECK(false);
  return false;
}

void CvtEvaluator::StoreMemo(const Expr& expr, const Context& ctx,
                             const Value& value) {
  const size_t id = static_cast<size_t>(expr.id());
  ++table_entries_;
  switch (analysis_.traits(expr).dependence) {
    case ContextDependence::kNone:
      constant_[id] = value;
      return;
    case ContextDependence::kNode:
      by_node_[id].emplace(ctx.node, value);
      return;
    case ContextDependence::kFull:
      by_context_[id].emplace(PackContext(ctx), value);
      return;
  }
  GKX_CHECK(false);
}

}  // namespace gkx::eval
