#include "eval/cvt_evaluator.hpp"

#include <mutex>

namespace gkx::eval {

using xpath::ContextDependence;
using xpath::Expr;

Status CvtEvaluator::Prepare() {
  // Same (document, query, concurrency) as the tables were built for: keep
  // them. Cells are deterministic over an immutable document, so the warm
  // tables answer byte-identically; this turns a long-lived engine's
  // repeat runs of one plan into pure memo hits.
  if (bound_doc_ == &doc() && bound_doc_serial_ == doc().serial() &&
      bound_query_ == &query() && bound_query_serial_ == query().serial() &&
      bound_concurrent_ == concurrent_) {
    return Status::Ok();
  }
  // Invalidate up front: if the (eager) fill below fails partway, the next
  // Bind must rebuild rather than trust half-filled tables from this one.
  bound_doc_ = nullptr;

  analysis_ = xpath::Analyze(query());
  const size_t n = static_cast<size_t>(query().num_exprs());
  constant_.assign(n, std::nullopt);
  by_node_.assign(n, {});
  by_context_.assign(n, {});
  table_entries_.store(0, std::memory_order_relaxed);
  expr_mu_ = concurrent_ ? std::make_unique<std::shared_mutex[]>(n) : nullptr;

  if (options_.eager) {
    // Bottom-up pass: expression ids are preorder, so reverse id order
    // visits children before parents. Fill the full context-value table of
    // every node-dependent subexpression; position-dependent tables fill
    // with their meaningful contexts as side effects of predicate loops.
    for (int id = query().num_exprs() - 1; id >= 0; --id) {
      const Expr& expr = query().expr(id);
      switch (analysis_.traits(expr).dependence) {
        case ContextDependence::kNone: {
          auto value = Eval(expr, RootContext(doc()));
          if (!value.ok()) return value.status();
          break;
        }
        case ContextDependence::kNode: {
          for (xml::NodeId v = 0; v < doc().size(); ++v) {
            auto value = Eval(expr, Context{v, 1, 1});
            if (!value.ok()) return value.status();
          }
          break;
        }
        case ContextDependence::kFull:
          break;  // demand-filled
      }
    }
  }
  bound_doc_ = &doc();
  bound_doc_serial_ = doc().serial();
  bound_query_ = &query();
  bound_query_serial_ = query().serial();
  bound_concurrent_ = concurrent_;
  return Status::Ok();
}

bool CvtEvaluator::LookupMemo(const Expr& expr, const Context& ctx, Value* out) {
  const size_t id = static_cast<size_t>(expr.id());
  // Shared lock in concurrent mode: any number of hits on the same table
  // proceed together; only a store into this expression's table excludes.
  std::shared_lock<std::shared_mutex> lock;
  if (concurrent_) {
    lock = std::shared_lock<std::shared_mutex>(expr_mu_[id]);
  }
  switch (analysis_.traits(expr).dependence) {
    case ContextDependence::kNone: {
      if (!constant_[id].has_value()) return false;
      *out = *constant_[id];
      return true;
    }
    case ContextDependence::kNode: {
      auto it = by_node_[id].find(ctx.node);
      if (it == by_node_[id].end()) return false;
      *out = it->second;
      return true;
    }
    case ContextDependence::kFull: {
      auto it = by_context_[id].find(PackContext(ctx));
      if (it == by_context_[id].end()) return false;
      *out = it->second;
      return true;
    }
  }
  GKX_CHECK(false);
  return false;
}

void CvtEvaluator::StoreMemo(const Expr& expr, const Context& ctx,
                             const Value& value) {
  const size_t id = static_cast<size_t>(expr.id());
  std::unique_lock<std::shared_mutex> lock;
  if (concurrent_) {
    lock = std::unique_lock<std::shared_mutex>(expr_mu_[id]);
  }
  // First-writer-wins: two workers may compute the same cell concurrently
  // (deterministic evaluation — they computed the same value); emplace keeps
  // the first and the entry count only reflects genuine inserts.
  bool inserted = false;
  switch (analysis_.traits(expr).dependence) {
    case ContextDependence::kNone:
      if (!constant_[id].has_value()) {
        constant_[id] = value;
        inserted = true;
      }
      break;
    case ContextDependence::kNode:
      inserted = by_node_[id].emplace(ctx.node, value).second;
      break;
    case ContextDependence::kFull:
      inserted = by_context_[id].emplace(PackContext(ctx), value).second;
      break;
  }
  if (inserted) table_entries_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace gkx::eval
