#include "eval/decision.hpp"

namespace gkx::eval {

Status ValidateInstance(const SingletonSuccessInstance& instance) {
  if (instance.doc == nullptr || instance.query == nullptr) {
    return InvalidArgumentError("instance needs a document and a query");
  }
  const ValueType query_type = xpath::StaticType(instance.query->root());
  if (instance.value.type() != query_type) {
    return InvalidArgumentError(
        "value type does not match the query's static type (Definition 5.3)");
  }
  switch (query_type) {
    case ValueType::kBoolean:
      if (!instance.value.boolean()) {
        return InvalidArgumentError(
            "boolean results can only be checked for true (Definition 5.3; "
            "false goes through the complement, Prop 2.4)");
      }
      break;
    case ValueType::kNodeSet:
      if (instance.value.nodes().size() != 1) {
        return InvalidArgumentError(
            "node-set instances take a single node v (Definition 5.3)");
      }
      break;
    default:
      break;
  }
  return Status::Ok();
}

Result<bool> DecideSingletonSuccess(const SingletonSuccessInstance& instance,
                                    Evaluator* engine) {
  GKX_CHECK(engine != nullptr);
  GKX_RETURN_IF_ERROR(ValidateInstance(instance));
  auto value = engine->Evaluate(*instance.doc, *instance.query, instance.context);
  if (!value.ok()) return value.status();
  if (value->is_node_set()) {
    return SetContains(value->nodes(), instance.value.nodes().front());
  }
  return value->Equals(instance.value);
}

Result<bool> DecideSingletonSuccessPda(const SingletonSuccessInstance& instance,
                                       PdaEvaluator::Options options) {
  GKX_RETURN_IF_ERROR(ValidateInstance(instance));
  PdaEvaluator pda(options);
  if (xpath::StaticType(instance.query->root()) == ValueType::kNodeSet) {
    return pda.CheckCandidate(*instance.doc, *instance.query, instance.context,
                              instance.value.nodes().front());
  }
  auto value =
      pda.Evaluate(*instance.doc, *instance.query, instance.context);
  if (!value.ok()) return value.status();
  return value->Equals(instance.value);
}

}  // namespace gkx::eval
