// The NAuxPDA-based evaluator of Lemma 5.4 / Theorem 5.5 (extended to pXPath
// per Theorem 6.2 and to bounded-depth negation per Theorems 5.9/6.3).
//
// The nondeterministic automaton traverses the query tree guessing a context
// and result per node and verifying the local consistency conditions of
// Table 1. This deterministic simulation replaces guesses by memoized
// searches: Singleton-Success(Q, ⟨n,p,s⟩, v) — "does Q on context ⟨n,p,s⟩
// evaluate to v / contain v?" — is decided compositionally, and full
// node-set evaluation loops the check over dom (Thm 5.5). The paper's key
// space observation is preserved: for a step χ::t[e] the candidate set Y is
// never materialized; membership of r, its position in Y, and |Y| are
// computed by streaming over the axis (AxisPositionOf).
//
// Supported fragment: pWF ∪ pXPath syntax — paths/unions, and/or,
// relational operators without boolean operands, arithmetic, position()/
// last(), number and string literals, boolean(), concat(), contains(),
// starts-with(), true()/false() — plus not() up to the configured depth
// (0 = reject all negation). Everything else returns kUnsupported.

#ifndef GKX_EVAL_PDA_EVALUATOR_HPP_
#define GKX_EVAL_PDA_EVALUATOR_HPP_

#include <cstdint>
#include <unordered_map>

#include "eval/evaluator.hpp"
#include "xpath/analysis.hpp"

namespace gkx::eval {

/// Per-run counters for the Table 1 consistency-check rows — the
/// bench_table1_pda experiment reports how often each row fires.
struct Table1Stats {
  int64_t locstep = 0;        // χ::t (last step, no predicate)
  int64_t step_predicate = 0; // χ::t[e]
  int64_t composition = 0;    // π1/π2 (intermediate-node search)
  int64_t union_branch = 0;   // π1|π2
  int64_t root_path = 0;      // /π
  int64_t position_fn = 0;    // position()
  int64_t last_fn = 0;        // last()
  int64_t constant = 0;       // number/string literal
  int64_t boolean_fn = 0;     // boolean(π)
  int64_t and_op = 0;         // e1 and e2
  int64_t or_op = 0;          // e1 or e2
  int64_t relop = 0;          // e1 RelOp e2
  int64_t arithop = 0;        // e1 ArithOp e2
  int64_t not_loop = 0;       // not(π) dom-loops (Thm 5.9 extension)

  int64_t Total() const {
    return locstep + step_predicate + composition + union_branch + root_path +
           position_fn + last_fn + constant + boolean_fn + and_op + or_op +
           relop + arithop + not_loop;
  }
};

class PdaEvaluator : public Evaluator {
 public:
  struct Options {
    /// Maximum not() nesting depth accepted (Theorem 5.9/6.3 extension);
    /// 0 rejects all negation (pure pWF/pXPath).
    int max_not_depth = 0;
  };

  PdaEvaluator() = default;
  explicit PdaEvaluator(Options options) : options_(options) {}

  std::string_view name() const override { return "pda"; }

  Result<Value> Evaluate(const xml::Document& doc, const xpath::Query& query,
                         const Context& ctx) override;

  /// Singleton-Success for one candidate result node (Definition 5.3 with a
  /// node-set query): does Q on (doc, ctx) select `candidate`?
  /// Thread-compatible with other instances (used by the parallel engine).
  Result<bool> CheckCandidate(const xml::Document& doc,
                              const xpath::Query& query, const Context& ctx,
                              xml::NodeId candidate);

  const Table1Stats& last_stats() const { return stats_; }

 private:
  Status Bind(const xml::Document& doc, const xpath::Query& query);

  /// Does node-set expression `expr` from context node n contain r?
  Result<bool> CheckSingleton(const xpath::Expr& expr, xml::NodeId n,
                              xml::NodeId r);
  Result<bool> CheckPathSuffix(const xpath::PathExpr& path, size_t step_index,
                               xml::NodeId n, xml::NodeId r);
  Result<bool> CheckStepTo(const xpath::Step& step, xml::NodeId n, xml::NodeId r);

  /// ∃r ∈ dom: CheckSingleton(expr, n, r) — exists-semantics of conditions.
  Result<bool> ExistsMatch(const xpath::Expr& expr, xml::NodeId n);

  // Negation depth is gated statically (analysis.max_not_depth must not
  // exceed options.max_not_depth), so no budget needs threading here.
  Result<bool> EvalBoolean(const xpath::Expr& expr, const Context& ctx);
  Result<double> EvalNumber(const xpath::Expr& expr, const Context& ctx);
  Result<Value> EvalScalar(const xpath::Expr& expr, const Context& ctx);
  Result<bool> EvalRelop(const xpath::BinaryExpr& binary, const Context& ctx);

  Options options_{};
  const xml::Document* doc_ = nullptr;
  const xpath::Query* query_ = nullptr;
  std::vector<ResolvedTest> tests_;  // by step id
  xpath::QueryAnalysis analysis_;
  Table1Stats stats_;

  // Memoization: deterministic search must not revisit states, or the
  // NAuxPDA's polynomial time bound is lost.
  std::unordered_map<uint64_t, bool> suffix_memo_;  // (step id, n, r)
  std::unordered_map<uint64_t, bool> exists_memo_;  // (expr id, n)
  // boolean memo: per expression id, keyed by packed context (exact keys —
  // no hash-combining that could collide across states).
  std::vector<std::unordered_map<uint64_t, bool>> boolean_memo_;
};

}  // namespace gkx::eval

#endif  // GKX_EVAL_PDA_EVALUATOR_HPP_
