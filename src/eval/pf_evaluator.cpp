#include "eval/pf_evaluator.hpp"

namespace gkx::eval {

namespace {

Result<NodeBitset> EvalPfPath(const xml::Document& doc,
                              const xpath::PathExpr& path, const Context& ctx,
                              const SweepOptions& sweep) {
  NodeBitset frontier(doc.size());
  frontier.Set(path.absolute() ? doc.root() : ctx.node);
  for (size_t s = 0; s < path.step_count(); ++s) {
    const xpath::Step& step = path.step(s);
    if (!step.predicates.empty()) {
      return UnsupportedError(
          "pf-frontier evaluates the PF fragment only (no predicates)");
    }
    frontier = AxisImage(doc, step.axis, frontier, sweep);
    // Apply the node test in place.
    ResolvedTest test = ResolvedTest::Resolve(doc, step.test);
    if (test.kind == xpath::NodeTest::Kind::kName) {
      NodeBitset named(doc.size());
      for (xml::NodeId v = 0; v < doc.size(); ++v) {
        if (test.Matches(doc, v)) named.Set(v);
      }
      frontier &= named;
    }
    if (frontier.Empty()) break;
  }
  return frontier;
}

}  // namespace

Result<Value> PfEvaluator::Evaluate(const xml::Document& doc,
                                    const xpath::Query& query,
                                    const Context& ctx) {
  if (doc.empty()) return InvalidArgumentError("empty document");
  const xpath::Expr& root = query.root();
  switch (root.kind()) {
    case xpath::Expr::Kind::kPath: {
      auto frontier = EvalPfPath(doc, root.As<xpath::PathExpr>(), ctx, sweep_);
      if (!frontier.ok()) return frontier.status();
      return Value::Nodes(frontier->ToNodeSet());
    }
    case xpath::Expr::Kind::kUnion: {
      const auto& u = root.As<xpath::UnionExpr>();
      NodeBitset merged(doc.size());
      for (size_t i = 0; i < u.branch_count(); ++i) {
        if (u.branch(i).kind() != xpath::Expr::Kind::kPath) {
          return UnsupportedError("pf-frontier: union of plain paths only");
        }
        auto frontier =
            EvalPfPath(doc, u.branch(i).As<xpath::PathExpr>(), ctx, sweep_);
        if (!frontier.ok()) return frontier.status();
        merged |= *frontier;
      }
      return Value::Nodes(merged.ToNodeSet());
    }
    default:
      return UnsupportedError("pf-frontier evaluates location paths only");
  }
}

}  // namespace gkx::eval
