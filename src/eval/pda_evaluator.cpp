#include "eval/pda_evaluator.hpp"

#include <string>
#include <utility>

namespace gkx::eval {

using xpath::BinaryOp;
using xpath::Expr;
using xpath::Function;
using xpath::FunctionCall;
using xpath::PathExpr;
using xpath::Step;
using xpath::UnionExpr;
using xpath::ValueType;

namespace {

uint64_t SuffixKey(int step_id, xml::NodeId n, xml::NodeId r) {
  GKX_CHECK(step_id >= 0 && step_id < (1 << 15));
  GKX_CHECK(n >= 0 && n < (1 << 24));
  GKX_CHECK(r >= 0 && r < (1 << 24));
  return (static_cast<uint64_t>(step_id) << 48) |
         (static_cast<uint64_t>(n) << 24) | static_cast<uint64_t>(r);
}

uint64_t ExistsKey(int expr_id, xml::NodeId n) {
  GKX_CHECK(expr_id >= 0 && expr_id < (1 << 24));
  GKX_CHECK(n >= 0 && n < (1 << 24));
  return (static_cast<uint64_t>(expr_id) << 24) | static_cast<uint64_t>(n);
}

}  // namespace

Status PdaEvaluator::Bind(const xml::Document& doc, const xpath::Query& query) {
  if (doc.empty()) return InvalidArgumentError("empty document");
  doc_ = &doc;
  query_ = &query;
  analysis_ = xpath::Analyze(query);
  if (analysis_.max_not_depth > options_.max_not_depth) {
    return UnsupportedError(
        "pda: not() nesting depth " + std::to_string(analysis_.max_not_depth) +
        " exceeds the configured bound " + std::to_string(options_.max_not_depth) +
        " (Theorem 5.9 requires bounded negation)");
  }
  if (analysis_.max_predicates_per_step > 1) {
    return UnsupportedError(
        "pda: iterated predicates are outside pWF/pXPath (Def 5.1/6.1; their "
        "addition makes evaluation P-complete, Theorem 5.7)");
  }
  for (Function f : analysis_.functions_used) {
    switch (f) {
      case Function::kPosition:
      case Function::kLast:
      case Function::kTrue:
      case Function::kFalse:
      case Function::kBoolean:
      case Function::kConcat:
      case Function::kContains:
      case Function::kStartsWith:
      case Function::kNot:  // depth-gated above
        break;
      default:
        return UnsupportedError(
            "pda: function " + std::string(FunctionName(f)) +
            "() is excluded from pWF/pXPath (Def 6.1 restriction 2)");
    }
  }
  if (analysis_.relop_with_boolean_operand) {
    return UnsupportedError(
        "pda: RelOp with boolean operand encodes negation (Def 6.1 "
        "restriction 3)");
  }
  tests_.clear();
  tests_.reserve(static_cast<size_t>(query.num_steps()));
  for (int id = 0; id < query.num_steps(); ++id) {
    tests_.push_back(ResolvedTest::Resolve(doc, query.step(id).test));
  }
  stats_ = Table1Stats{};
  suffix_memo_.clear();
  exists_memo_.clear();
  boolean_memo_.assign(static_cast<size_t>(query.num_exprs()), {});
  return Status::Ok();
}

Result<Value> PdaEvaluator::Evaluate(const xml::Document& doc,
                                     const xpath::Query& query,
                                     const Context& ctx) {
  GKX_RETURN_IF_ERROR(Bind(doc, query));
  const Expr& root = query.root();
  switch (xpath::StaticType(root)) {
    case ValueType::kNodeSet: {
      // Theorem 5.5: node-set evaluation = Singleton-Success in a loop over
      // all candidate result nodes.
      NodeSet out;
      for (xml::NodeId v = 0; v < doc.size(); ++v) {
        auto in = CheckSingleton(root, ctx.node, v);
        if (!in.ok()) return in.status();
        if (*in) out.push_back(v);
      }
      return Value::Nodes(std::move(out));
    }
    case ValueType::kBoolean: {
      auto value = EvalBoolean(root, ctx);
      if (!value.ok()) return value.status();
      return Value::Boolean(*value);
    }
    case ValueType::kNumber:
    case ValueType::kString:
      return EvalScalar(root, ctx);
  }
  GKX_CHECK(false);
  return InternalError("unreachable");
}

Result<bool> PdaEvaluator::CheckCandidate(const xml::Document& doc,
                                          const xpath::Query& query,
                                          const Context& ctx,
                                          xml::NodeId candidate) {
  if (doc_ != &doc || query_ != &query) {
    GKX_RETURN_IF_ERROR(Bind(doc, query));
  }
  if (xpath::StaticType(query.root()) != ValueType::kNodeSet) {
    return InvalidArgumentError("CheckCandidate requires a node-set query");
  }
  return CheckSingleton(query.root(), ctx.node, candidate);
}

Result<bool> PdaEvaluator::CheckSingleton(const Expr& expr, xml::NodeId n,
                                          xml::NodeId r) {
  switch (expr.kind()) {
    case Expr::Kind::kUnion: {
      const auto& u = expr.As<UnionExpr>();
      for (size_t i = 0; i < u.branch_count(); ++i) {
        ++stats_.union_branch;
        auto in = CheckSingleton(u.branch(i), n, r);
        if (!in.ok()) return in;
        if (*in) return true;
      }
      return false;
    }
    case Expr::Kind::kPath: {
      const auto& path = expr.As<PathExpr>();
      if (path.absolute()) {
        // Table 1 row "/π": context is replaced by the root.
        ++stats_.root_path;
        n = doc_->root();
      }
      if (path.step_count() == 0) return r == n;  // bare "/"
      return CheckPathSuffix(path, 0, n, r);
    }
    default:
      return UnsupportedError("pda: expected a location path");
  }
}

Result<bool> PdaEvaluator::CheckPathSuffix(const PathExpr& path,
                                           size_t step_index, xml::NodeId n,
                                           xml::NodeId r) {
  const Step& step = path.step(step_index);
  if (step_index + 1 == path.step_count()) {
    return CheckStepTo(step, n, r);
  }
  const uint64_t key = SuffixKey(step.id, n, r);
  auto memo = suffix_memo_.find(key);
  if (memo != suffix_memo_.end()) return memo->second;
  // Table 1 row "π1/π2": search the intermediate node m. Candidates are
  // exactly the axis nodes of the first step (the PDA would guess m).
  bool found = false;
  Status failure = Status::Ok();
  ForEachOnAxis(*doc_, n, step.axis, [&](xml::NodeId m) {
    ++stats_.composition;
    auto via = CheckStepTo(step, n, m);
    if (!via.ok()) {
      failure = via.status();
      return false;
    }
    if (!*via) return true;
    auto rest = CheckPathSuffix(path, step_index + 1, m, r);
    if (!rest.ok()) {
      failure = rest.status();
      return false;
    }
    if (*rest) {
      found = true;
      return false;
    }
    return true;
  });
  if (!failure.ok()) return failure;
  suffix_memo_.emplace(key, found);
  return found;
}

Result<bool> PdaEvaluator::CheckStepTo(const Step& step, xml::NodeId n,
                                       xml::NodeId r) {
  // Table 1 rows "χ::t" and "χ::t[e]": r must lie on the axis and pass the
  // test; with a predicate, its context position/size within the candidate
  // set Y are computed by streaming over the axis — Y is never materialized
  // (the paper's crucial observation for the L space bound).
  if (step.predicates.empty()) {
    ++stats_.locstep;
    return AxisContains(*doc_, n, step.axis, r) &&
           tests_[static_cast<size_t>(step.id)].Matches(*doc_, r);
  }
  ++stats_.step_predicate;
  int64_t position = 0;
  int64_t size = 0;
  if (!AxisPositionOf(*doc_, n, step.axis, tests_[static_cast<size_t>(step.id)],
                      r, &position, &size)) {
    return false;
  }
  const Expr& predicate = *step.predicates.front();
  const Context ctx{r, position, size};
  if (xpath::StaticType(predicate) == ValueType::kNumber) {
    auto value = EvalNumber(predicate, ctx);
    if (!value.ok()) return value.status();
    return *value == static_cast<double>(position);
  }
  return EvalBoolean(predicate, ctx);
}

Result<bool> PdaEvaluator::ExistsMatch(const Expr& expr, xml::NodeId n) {
  const uint64_t key = ExistsKey(expr.id(), n);
  auto memo = exists_memo_.find(key);
  if (memo != exists_memo_.end()) return memo->second;
  bool found = false;
  for (xml::NodeId r = 0; r < doc_->size() && !found; ++r) {
    auto in = CheckSingleton(expr, n, r);
    if (!in.ok()) return in;
    found = *in;
  }
  exists_memo_.emplace(key, found);
  return found;
}

Result<bool> PdaEvaluator::EvalBoolean(const Expr& expr, const Context& ctx) {
  switch (expr.kind()) {
    case Expr::Kind::kPath:
    case Expr::Kind::kUnion:
      // Conditions have exists-semantics (footnote 3 of the paper).
      return ExistsMatch(expr, ctx.node);
    default:
      break;
  }
  const uint64_t key = PackContext(ctx);
  auto& memo_map = boolean_memo_[static_cast<size_t>(expr.id())];
  auto memo = memo_map.find(key);
  if (memo != memo_map.end()) return memo->second;

  Result<bool> result = [&]() -> Result<bool> {
    switch (expr.kind()) {
      case Expr::Kind::kBinary: {
        const auto& binary = expr.As<xpath::BinaryExpr>();
        if (binary.op() == BinaryOp::kAnd) {
          ++stats_.and_op;
          auto lhs = EvalBoolean(binary.lhs(), ctx);
          if (!lhs.ok() || !*lhs) return lhs;
          return EvalBoolean(binary.rhs(), ctx);
        }
        if (binary.op() == BinaryOp::kOr) {
          ++stats_.or_op;
          auto lhs = EvalBoolean(binary.lhs(), ctx);
          if (!lhs.ok() || *lhs) return lhs;
          return EvalBoolean(binary.rhs(), ctx);
        }
        if (xpath::IsRelationalOp(binary.op())) {
          ++stats_.relop;
          return EvalRelop(binary, ctx);
        }
        return UnsupportedError("pda: arithmetic expression in boolean position");
      }
      case Expr::Kind::kFunctionCall: {
        const auto& call = expr.As<FunctionCall>();
        switch (call.function()) {
          case Function::kTrue:
            return true;
          case Function::kFalse:
            return false;
          case Function::kBoolean:
            ++stats_.boolean_fn;
            if (xpath::StaticType(call.arg(0)) == ValueType::kNodeSet) {
              return ExistsMatch(call.arg(0), ctx.node);
            }
            return EvalBoolean(call.arg(0), ctx);
          case Function::kNot: {
            // Theorem 5.9: bounded-depth negation via the complementary
            // check (for node-set arguments, a loop over dom).
            ++stats_.not_loop;
            const Expr& arg = call.arg(0);
            if (xpath::StaticType(arg) == ValueType::kNodeSet) {
              auto exists = ExistsMatch(arg, ctx.node);
              if (!exists.ok()) return exists;
              return !*exists;
            }
            auto value = EvalBoolean(arg, ctx);
            if (!value.ok()) return value;
            return !*value;
          }
          case Function::kContains:
          case Function::kStartsWith: {
            auto lhs = EvalScalar(call.arg(0), ctx);
            if (!lhs.ok()) return lhs.status();
            auto rhs = EvalScalar(call.arg(1), ctx);
            if (!rhs.ok()) return rhs.status();
            const std::string a = lhs->ToString(*doc_);
            const std::string b = rhs->ToString(*doc_);
            if (call.function() == Function::kContains) {
              return a.find(b) != std::string::npos;
            }
            return a.size() >= b.size() && a.compare(0, b.size(), b) == 0;
          }
          default:
            return UnsupportedError("pda: unsupported boolean function");
        }
      }
      default:
        return UnsupportedError("pda: unsupported boolean expression");
    }
  }();

  if (result.ok()) memo_map.emplace(key, *result);
  return result;
}

Result<bool> PdaEvaluator::EvalRelop(const xpath::BinaryExpr& binary,
                                     const Context& ctx) {
  const Expr& lhs = binary.lhs();
  const Expr& rhs = binary.rhs();
  const bool lns = xpath::StaticType(lhs) == ValueType::kNodeSet;
  const bool rns = xpath::StaticType(rhs) == ValueType::kNodeSet;

  if (!lns && !rns) {
    auto a = EvalScalar(lhs, ctx);
    if (!a.ok()) return a.status();
    auto b = EvalScalar(rhs, ctx);
    if (!b.ok()) return b.status();
    return CompareValues(*doc_, binary.op(), *a, *b);
  }

  // Node-set operands (pXPath / Theorem 6.2): existential semantics realized
  // as Singleton-Success loops over dom — node sets still never materialize.
  if (lns && rns) {
    for (xml::NodeId a = 0; a < doc_->size(); ++a) {
      auto in_a = CheckSingleton(lhs, ctx.node, a);
      if (!in_a.ok()) return in_a;
      if (!*in_a) continue;
      Value va = Value::Nodes({a});
      for (xml::NodeId b = 0; b < doc_->size(); ++b) {
        auto in_b = CheckSingleton(rhs, ctx.node, b);
        if (!in_b.ok()) return in_b;
        if (!*in_b) continue;
        if (CompareValues(*doc_, binary.op(), va, Value::Nodes({b}))) {
          return true;
        }
      }
    }
    return false;
  }

  const Expr& set_side = lns ? lhs : rhs;
  const Expr& scalar_side = lns ? rhs : lhs;
  auto scalar = EvalScalar(scalar_side, ctx);
  if (!scalar.ok()) return scalar.status();
  for (xml::NodeId v = 0; v < doc_->size(); ++v) {
    auto in = CheckSingleton(set_side, ctx.node, v);
    if (!in.ok()) return in;
    if (!*in) continue;
    const Value node_value = Value::Nodes({v});
    const bool match = lns
                           ? CompareValues(*doc_, binary.op(), node_value, *scalar)
                           : CompareValues(*doc_, binary.op(), *scalar, node_value);
    if (match) return true;
  }
  return false;
}

Result<double> PdaEvaluator::EvalNumber(const Expr& expr, const Context& ctx) {
  switch (expr.kind()) {
    case Expr::Kind::kNumberLiteral:
      ++stats_.constant;
      return expr.As<xpath::NumberLiteral>().value();
    case Expr::Kind::kNegate: {
      auto operand = EvalNumber(expr.As<xpath::NegateExpr>().operand(), ctx);
      if (!operand.ok()) return operand;
      return -*operand;
    }
    case Expr::Kind::kBinary: {
      const auto& binary = expr.As<xpath::BinaryExpr>();
      if (!xpath::IsArithmeticOp(binary.op())) {
        return UnsupportedError("pda: boolean operator in numeric position");
      }
      ++stats_.arithop;
      auto lhs = EvalNumber(binary.lhs(), ctx);
      if (!lhs.ok()) return lhs;
      auto rhs = EvalNumber(binary.rhs(), ctx);
      if (!rhs.ok()) return rhs;
      return ArithmeticOp(binary.op(), *lhs, *rhs);
    }
    case Expr::Kind::kFunctionCall: {
      const auto& call = expr.As<FunctionCall>();
      if (call.function() == Function::kPosition) {
        ++stats_.position_fn;
        return static_cast<double>(ctx.position);
      }
      if (call.function() == Function::kLast) {
        ++stats_.last_fn;
        return static_cast<double>(ctx.size);
      }
      return UnsupportedError("pda: unsupported numeric function");
    }
    default:
      return UnsupportedError("pda: unsupported numeric expression");
  }
}

Result<Value> PdaEvaluator::EvalScalar(const Expr& expr, const Context& ctx) {
  switch (xpath::StaticType(expr)) {
    case ValueType::kNumber: {
      auto value = EvalNumber(expr, ctx);
      if (!value.ok()) return value.status();
      return Value::Number(*value);
    }
    case ValueType::kBoolean: {
      auto value = EvalBoolean(expr, ctx);
      if (!value.ok()) return value.status();
      return Value::Boolean(*value);
    }
    case ValueType::kString: {
      switch (expr.kind()) {
        case Expr::Kind::kStringLiteral:
          ++stats_.constant;
          return Value::String(expr.As<xpath::StringLiteral>().value());
        case Expr::Kind::kFunctionCall: {
          const auto& call = expr.As<FunctionCall>();
          if (call.function() == Function::kConcat) {
            std::string out;
            for (size_t i = 0; i < call.arg_count(); ++i) {
              auto piece = EvalScalar(call.arg(i), ctx);
              if (!piece.ok()) return piece;
              out += piece->ToString(*doc_);
            }
            return Value::String(std::move(out));
          }
          return UnsupportedError("pda: unsupported string function");
        }
        default:
          return UnsupportedError("pda: unsupported string expression");
      }
    }
    case ValueType::kNodeSet:
      return UnsupportedError("pda: node-set in scalar position");
  }
  GKX_CHECK(false);
  return InternalError("unreachable");
}

}  // namespace gkx::eval
