// The user-facing facade over the staged compile pipeline (src/plan):
//   normalize (canonical rewrites) → classify per subexpression (Figure 1,
//   per step) → lower (fused same-engine segments) → execute.
// Uniform plans dispatch whole-query to the cheapest sound engine —
//   PF (paths only, NL)                   -> pf-frontier bitset sweeps
//   Core XPath (incl. positive Core)      -> core-linear, O(|D|·|Q|)
//   anything else                         -> context-value tables, polynomial
// — and genuinely mixed plans run hybrid: the path spine stays on the
// bitset fast path, only non-Core predicate subtrees drop into CVT
// (Answer.evaluator then reports the route list, e.g. "pf-frontier+cvt").

#ifndef GKX_EVAL_ENGINE_HPP_
#define GKX_EVAL_ENGINE_HPP_

#include <memory>
#include <string>

#include "eval/core_linear_evaluator.hpp"
#include "eval/cvt_evaluator.hpp"
#include "eval/evaluator.hpp"
#include "eval/pf_evaluator.hpp"
#include "eval/recursive_base.hpp"
#include "plan/exec.hpp"
#include "plan/physical.hpp"
#include "xpath/fragment.hpp"
#include "xpath/parser.hpp"

namespace gkx::eval {

class Engine {
 public:
  struct Answer {
    Value value;
    xpath::FragmentReport fragment;
    std::string evaluator;  // route list that produced the value
  };

  /// Which engine a plan (or plan segment) dispatches to. Legacy name for
  /// plan::Route — kPfFrontier / kCoreLinear / kCvt.
  using Choice = plan::Route;

  /// Name of the evaluator a whole-query Choice dispatches to.
  static std::string_view EvaluatorName(Choice choice) {
    return plan::RouteEvaluatorName(choice);
  }

  /// A compiled query — the staged physical plan (thin alias during the
  /// plan-IR migration; see plan/physical.hpp). Plans are immutable after
  /// Compile and safe to share across threads.
  using Plan = plan::Physical;

  /// Parses, normalizes, classifies per subexpression, and lowers a query
  /// into a reusable Plan. Running a Plan via RunPlan gives answers
  /// value-identical to Run(doc, query_text).
  static Result<Plan> Compile(std::string_view query_text);

  /// Compiles an already-parsed query into a Plan (the query is moved in).
  static Plan CompileParsed(xpath::Query query);

  /// Runs a compiled plan from the root context.
  Result<Answer> RunPlan(const xml::Document& doc, const Plan& plan) {
    return RunPlan(doc, plan, RootContext(doc));
  }

  /// Runs a compiled plan from a given context.
  Result<Answer> RunPlan(const xml::Document& doc, const Plan& plan,
                         const Context& ctx) {
    return RunPlan(doc, plan, ctx, nullptr);
  }

  /// Same, with per-segment timing capture: when `trace` is non-null and
  /// the plan is staged, one SegmentTiming per plan segment is appended
  /// (see plan/exec.hpp). Uniform plans ignore the trace — the whole
  /// request-latency span already covers their single dispatch.
  Result<Answer> RunPlan(const xml::Document& doc, const Plan& plan,
                         const Context& ctx, plan::ExecTrace* trace);

  /// Parses, compiles, and runs a query from the root context.
  Result<Answer> Run(const xml::Document& doc, std::string_view query_text);

  /// Intra-query parallelism: staged plans partition their segments per
  /// `opts` (see plan/exec.hpp) and uniform bitset dispatches partition
  /// their sweeps; `stats`, when non-null, receives per-segment
  /// parallel/sequential/skipped counts from every staged run (the service
  /// wires its shared counters here). Answers are byte-identical to
  /// sequential execution at any setting.
  void set_exec_options(const plan::ExecOptions& opts) {
    exec_opts_ = opts;
    const SweepOptions sweep{opts.pool, opts.workers, opts.min_parallel_nodes};
    linear_.set_sweep_options(sweep);
    pf_.set_sweep_options(sweep);
  }
  void set_exec_stats(plan::ExecStats* stats) { exec_stats_ = stats; }

  /// Runs a borrowed, already-parsed query from a given context. This legacy
  /// entry point cannot own the AST, so it uses whole-query dispatch (no
  /// normalization, no staging); Compile + RunPlan gets the full pipeline.
  Result<Answer> Run(const xml::Document& doc, const xpath::Query& query,
                     const Context& ctx);

 private:
  /// The single whole-query dispatch site shared by RunPlan and Run.
  Result<Answer> RunDispatched(const xml::Document& doc,
                               const xpath::Query& query,
                               const xpath::FragmentReport& fragment,
                               Choice choice, const Context& ctx);

  PfEvaluator pf_;
  CoreLinearEvaluator linear_;
  CvtEvaluator cvt_;
  plan::ExecOptions exec_opts_;
  plan::ExecStats* exec_stats_ = nullptr;
};

}  // namespace gkx::eval

#endif  // GKX_EVAL_ENGINE_HPP_
