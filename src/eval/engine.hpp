// The user-facing facade: classify the query against the paper's fragment
// taxonomy (Figure 1) and dispatch to the cheapest sound engine —
//   PF (paths only, NL)                   -> pf-frontier bitset sweeps
//   Core XPath (incl. positive Core)      -> core-linear, O(|D|·|Q|)
//   anything else                         -> context-value tables, polynomial

#ifndef GKX_EVAL_ENGINE_HPP_
#define GKX_EVAL_ENGINE_HPP_

#include <memory>
#include <string>

#include "eval/core_linear_evaluator.hpp"
#include "eval/cvt_evaluator.hpp"
#include "eval/evaluator.hpp"
#include "eval/pf_evaluator.hpp"
#include "eval/recursive_base.hpp"
#include "xpath/fragment.hpp"
#include "xpath/parser.hpp"

namespace gkx::eval {

class Engine {
 public:
  struct Answer {
    Value value;
    xpath::FragmentReport fragment;
    std::string evaluator;  // engine that produced the value
  };

  /// Which of the three engines a plan dispatches to.
  enum class Choice { kPfFrontier, kCoreLinear, kCvt };

  /// Name of the evaluator a Choice dispatches to (taken from the engines'
  /// own name() strings, so it cannot drift from Answer.evaluator).
  static std::string_view EvaluatorName(Choice choice);

  /// A compiled query: the parse + classification + dispatch work that is
  /// identical across every document the query runs against. Plans are
  /// immutable after Compile and safe to share across threads (evaluators
  /// only read the Query).
  struct Plan {
    xpath::Query query;
    xpath::FragmentReport fragment;
    Choice choice = Choice::kCvt;

    /// Name of the evaluator `choice` dispatches to.
    std::string_view evaluator_name() const { return EvaluatorName(choice); }
  };

  /// Parses and classifies a query into a reusable Plan. Running a Plan via
  /// RunPlan gives byte-identical Answers to Run(doc, query_text).
  static Result<Plan> Compile(std::string_view query_text);

  /// Classifies an already-parsed query into a Plan (the query is moved in).
  static Plan CompileParsed(xpath::Query query);

  /// Runs a compiled plan from the root context.
  Result<Answer> RunPlan(const xml::Document& doc, const Plan& plan) {
    return RunPlan(doc, plan, RootContext(doc));
  }

  /// Runs a compiled plan from a given context.
  Result<Answer> RunPlan(const xml::Document& doc, const Plan& plan,
                         const Context& ctx);

  /// Parses and runs a query from the root context.
  Result<Answer> Run(const xml::Document& doc, std::string_view query_text);

  /// Runs a parsed query from a given context.
  Result<Answer> Run(const xml::Document& doc, const xpath::Query& query,
                     const Context& ctx);

 private:
  /// The single dispatch site shared by RunPlan and Run.
  Result<Answer> RunDispatched(const xml::Document& doc,
                               const xpath::Query& query,
                               const xpath::FragmentReport& fragment,
                               Choice choice, const Context& ctx);

  PfEvaluator pf_;
  CoreLinearEvaluator linear_;
  CvtEvaluator cvt_;
};

}  // namespace gkx::eval

#endif  // GKX_EVAL_ENGINE_HPP_
