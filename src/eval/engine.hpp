// The user-facing facade: classify the query against the paper's fragment
// taxonomy (Figure 1) and dispatch to the cheapest sound engine —
//   PF (paths only, NL)                   -> pf-frontier bitset sweeps
//   Core XPath (incl. positive Core)      -> core-linear, O(|D|·|Q|)
//   anything else                         -> context-value tables, polynomial

#ifndef GKX_EVAL_ENGINE_HPP_
#define GKX_EVAL_ENGINE_HPP_

#include <memory>
#include <string>

#include "eval/core_linear_evaluator.hpp"
#include "eval/cvt_evaluator.hpp"
#include "eval/evaluator.hpp"
#include "eval/pf_evaluator.hpp"
#include "eval/recursive_base.hpp"
#include "xpath/fragment.hpp"
#include "xpath/parser.hpp"

namespace gkx::eval {

class Engine {
 public:
  struct Answer {
    Value value;
    xpath::FragmentReport fragment;
    std::string evaluator;  // engine that produced the value
  };

  /// Parses and runs a query from the root context.
  Result<Answer> Run(const xml::Document& doc, std::string_view query_text);

  /// Runs a parsed query from a given context.
  Result<Answer> Run(const xml::Document& doc, const xpath::Query& query,
                     const Context& ctx);

 private:
  PfEvaluator pf_;
  CoreLinearEvaluator linear_;
  CvtEvaluator cvt_;
};

}  // namespace gkx::eval

#endif  // GKX_EVAL_ENGINE_HPP_
