#include "eval/value.hpp"

#include <cmath>

#include "base/string_util.hpp"

namespace gkx::eval {

using xpath::BinaryOp;

bool Value::ToBoolean() const {
  switch (type_) {
    case ValueType::kBoolean:
      return boolean_;
    case ValueType::kNumber:
      return number_ != 0.0 && !std::isnan(number_);
    case ValueType::kString:
      return !string_.empty();
    case ValueType::kNodeSet:
      return !nodes_.empty();
  }
  GKX_CHECK(false);
  return false;
}

double Value::ToNumber(const xml::Document& doc) const {
  switch (type_) {
    case ValueType::kBoolean:
      return boolean_ ? 1.0 : 0.0;
    case ValueType::kNumber:
      return number_;
    case ValueType::kString:
      return ParseXPathNumber(string_);
    case ValueType::kNodeSet:
      return ParseXPathNumber(ToString(doc));
  }
  GKX_CHECK(false);
  return 0.0;
}

std::string Value::ToString(const xml::Document& doc) const {
  switch (type_) {
    case ValueType::kBoolean:
      return boolean_ ? "true" : "false";
    case ValueType::kNumber:
      return FormatXPathNumber(number_);
    case ValueType::kString:
      return string_;
    case ValueType::kNodeSet:
      return nodes_.empty() ? std::string() : doc.StringValue(nodes_.front());
  }
  GKX_CHECK(false);
  return {};
}

bool Value::Equals(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case ValueType::kBoolean:
      return boolean_ == other.boolean_;
    case ValueType::kNumber:
      return number_ == other.number_;
    case ValueType::kString:
      return string_ == other.string_;
    case ValueType::kNodeSet:
      return nodes_ == other.nodes_;
  }
  GKX_CHECK(false);
  return false;
}

std::string Value::DebugString() const {
  switch (type_) {
    case ValueType::kBoolean:
      return std::string("boolean(") + (boolean_ ? "true" : "false") + ")";
    case ValueType::kNumber:
      return "number(" + FormatXPathNumber(number_) + ")";
    case ValueType::kString:
      return "string('" + string_ + "')";
    case ValueType::kNodeSet: {
      std::string out = "node-set{";
      for (size_t i = 0; i < nodes_.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(nodes_[i]);
      }
      return out + "}";
    }
  }
  GKX_CHECK(false);
  return {};
}

namespace {

bool CompareNumbers(BinaryOp op, double lhs, double rhs) {
  switch (op) {
    case BinaryOp::kEq: return lhs == rhs;
    case BinaryOp::kNe: return lhs != rhs;
    case BinaryOp::kLt: return lhs < rhs;
    case BinaryOp::kLe: return lhs <= rhs;
    case BinaryOp::kGt: return lhs > rhs;
    case BinaryOp::kGe: return lhs >= rhs;
    default:
      GKX_CHECK(false);
      return false;
  }
}

bool IsOrderOp(BinaryOp op) {
  return op == BinaryOp::kLt || op == BinaryOp::kLe || op == BinaryOp::kGt ||
         op == BinaryOp::kGe;
}

/// Comparison of two non-node-set values per §3.4: booleans win, then
/// numbers, then strings; order comparisons always go through numbers.
bool CompareScalars(const xml::Document& doc, BinaryOp op, const Value& lhs,
                    const Value& rhs) {
  if (IsOrderOp(op)) {
    return CompareNumbers(op, lhs.ToNumber(doc), rhs.ToNumber(doc));
  }
  if (lhs.type() == ValueType::kBoolean || rhs.type() == ValueType::kBoolean) {
    bool cmp = lhs.ToBoolean() == rhs.ToBoolean();
    return op == BinaryOp::kEq ? cmp : !cmp;
  }
  if (lhs.type() == ValueType::kNumber || rhs.type() == ValueType::kNumber) {
    return CompareNumbers(op, lhs.ToNumber(doc), rhs.ToNumber(doc));
  }
  bool cmp = lhs.ToString(doc) == rhs.ToString(doc);
  return op == BinaryOp::kEq ? cmp : !cmp;
}

BinaryOp MirrorOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return op;  // = and != are symmetric
  }
}

/// node-set `op` scalar (existential over the node-set).
bool CompareNodeSetScalar(const xml::Document& doc, BinaryOp op,
                          const NodeSet& nodes, const Value& scalar) {
  if (scalar.type() == ValueType::kBoolean) {
    // §3.4: convert the node-set with boolean().
    bool lhs = !nodes.empty();
    bool cmp = lhs == scalar.boolean();
    if (op == BinaryOp::kEq) return cmp;
    if (op == BinaryOp::kNe) return !cmp;
    return CompareNumbers(op, lhs ? 1.0 : 0.0, scalar.ToNumber(doc));
  }
  for (xml::NodeId node : nodes) {
    std::string sv = doc.StringValue(node);
    bool match;
    if (IsOrderOp(op) || scalar.type() == ValueType::kNumber) {
      match = CompareNumbers(op, ParseXPathNumber(sv), scalar.ToNumber(doc));
    } else {
      bool eq = sv == scalar.ToString(doc);
      match = op == BinaryOp::kEq ? eq : !eq;
    }
    if (match) return true;
  }
  return false;
}

}  // namespace

bool CompareValues(const xml::Document& doc, BinaryOp op, const Value& lhs,
                   const Value& rhs) {
  GKX_CHECK(xpath::IsRelationalOp(op));
  const bool lns = lhs.is_node_set();
  const bool rns = rhs.is_node_set();
  if (lns && rns) {
    // Existential over both sides; equality on string-values, order on
    // number(string-value).
    for (xml::NodeId a : lhs.nodes()) {
      const std::string sa = doc.StringValue(a);
      const double na = ParseXPathNumber(sa);
      for (xml::NodeId b : rhs.nodes()) {
        bool match;
        if (IsOrderOp(op)) {
          match = CompareNumbers(op, na, ParseXPathNumber(doc.StringValue(b)));
        } else {
          bool eq = sa == doc.StringValue(b);
          match = op == BinaryOp::kEq ? eq : !eq;
        }
        if (match) return true;
      }
    }
    return false;
  }
  if (lns) return CompareNodeSetScalar(doc, op, lhs.nodes(), rhs);
  if (rns) return CompareNodeSetScalar(doc, MirrorOp(op), rhs.nodes(), lhs);
  return CompareScalars(doc, op, lhs, rhs);
}

double ArithmeticOp(xpath::BinaryOp op, double lhs, double rhs) {
  switch (op) {
    case BinaryOp::kAdd: return lhs + rhs;
    case BinaryOp::kSub: return lhs - rhs;
    case BinaryOp::kMul: return lhs * rhs;
    case BinaryOp::kDiv: return lhs / rhs;
    case BinaryOp::kMod: return std::fmod(lhs, rhs);
    default:
      GKX_CHECK(false);
      return 0.0;
  }
}

double XPathRound(double value) {
  if (std::isnan(value) || std::isinf(value)) return value;
  return std::floor(value + 0.5);
}

}  // namespace gkx::eval
