// XPath 1.0 values (boolean, number, string, node-set) with the coercion and
// comparison semantics of the W3C recommendation restricted to our element
// data model. All evaluators share these semantics — agreement between them
// is the core differential-test invariant of this repository.

#ifndef GKX_EVAL_VALUE_HPP_
#define GKX_EVAL_VALUE_HPP_

#include <string>
#include <utility>

#include "base/status.hpp"
#include "eval/node_set.hpp"
#include "xml/document.hpp"
#include "xpath/ast.hpp"

namespace gkx::eval {

using xpath::ValueType;

/// A dynamically-typed XPath value.
class Value {
 public:
  Value() : type_(ValueType::kBoolean), boolean_(false) {}

  static Value Boolean(bool b) {
    Value v;
    v.type_ = ValueType::kBoolean;
    v.boolean_ = b;
    return v;
  }
  static Value Number(double n) {
    Value v;
    v.type_ = ValueType::kNumber;
    v.number_ = n;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.type_ = ValueType::kString;
    v.string_ = std::move(s);
    return v;
  }
  static Value Nodes(NodeSet nodes) {
    Value v;
    v.type_ = ValueType::kNodeSet;
    v.nodes_ = std::move(nodes);
    return v;
  }

  ValueType type() const { return type_; }
  bool is_node_set() const { return type_ == ValueType::kNodeSet; }

  bool boolean() const {
    GKX_CHECK(type_ == ValueType::kBoolean);
    return boolean_;
  }
  double number() const {
    GKX_CHECK(type_ == ValueType::kNumber);
    return number_;
  }
  const std::string& string() const {
    GKX_CHECK(type_ == ValueType::kString);
    return string_;
  }
  const NodeSet& nodes() const {
    GKX_CHECK(type_ == ValueType::kNodeSet);
    return nodes_;
  }
  NodeSet&& TakeNodes() && {
    GKX_CHECK(type_ == ValueType::kNodeSet);
    return std::move(nodes_);
  }

  /// boolean() coercion: node-set -> non-empty, number -> not 0 and not NaN,
  /// string -> non-empty.
  bool ToBoolean() const;

  /// number() coercion (node-set -> number(string-value of first node)).
  double ToNumber(const xml::Document& doc) const;

  /// string() coercion (node-set -> string-value of first node or "").
  std::string ToString(const xml::Document& doc) const;

  /// Structural equality (exact; no coercions). NaN != NaN.
  bool Equals(const Value& other) const;

  /// Debug rendering ("boolean(true)", "node-set{1,4,7}", ...).
  std::string DebugString() const;

 private:
  ValueType type_;
  bool boolean_ = false;
  double number_ = 0.0;
  std::string string_;
  NodeSet nodes_;
};

/// XPath comparison `lhs op rhs` with the full §3.4 node-set existential
/// semantics. `op` must be a relational operator.
bool CompareValues(const xml::Document& doc, xpath::BinaryOp op,
                   const Value& lhs, const Value& rhs);

/// XPath arithmetic (operands coerced with number()). `op` must be an
/// arithmetic operator. div/mod follow IEEE/XPath (mod keeps the dividend's
/// sign; division by zero yields ±Infinity/NaN).
double ArithmeticOp(xpath::BinaryOp op, double lhs, double rhs);

/// XPath round(): floor(x + 0.5) with NaN/∞ passed through.
double XPathRound(double value);

}  // namespace gkx::eval

#endif  // GKX_EVAL_VALUE_HPP_
