#include "eval/core_linear_evaluator.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "xpath/fragment.hpp"

namespace gkx::eval {

using xpath::Axis;
using xpath::BinaryOp;
using xpath::Expr;
using xpath::Function;
using xpath::PathExpr;
using xpath::Step;

namespace {

// One sweep's partition of the node universe into word-aligned preorder
// intervals: chunk c covers words [c*words_per, ...), i.e. nodes
// [c*words_per*64, ...). Word-aligned means no two chunks ever write the
// same output uint64_t. pool == nullptr ⇒ chunks == 1 ⇒ the sweep runs
// sequentially on the calling thread with zero fork/join overhead.
struct SweepPlan {
  ThreadPool* pool = nullptr;
  int chunks = 1;
  size_t words_per = 0;
  size_t words = 0;

  static SweepPlan Make(const SweepOptions& sweep, int32_t universe,
                        size_t words) {
    SweepPlan plan;
    plan.words = words;
    if (sweep.ShouldPartition(universe) && words > 1) {
      plan.chunks = static_cast<int>(
          std::min(static_cast<size_t>(sweep.workers), words));
      plan.pool = sweep.pool != nullptr ? sweep.pool : &ThreadPool::Shared();
    }
    plan.words_per =
        (words + static_cast<size_t>(plan.chunks) - 1) /
        static_cast<size_t>(plan.chunks);
    return plan;
  }

  int32_t NodeLo(size_t w_begin) const {
    return static_cast<int32_t>(w_begin * 64);
  }
  int32_t NodeHi(size_t w_end, int32_t universe) const {
    const size_t hi = w_end * 64;
    return hi < static_cast<size_t>(universe) ? static_cast<int32_t>(hi)
                                              : universe;
  }

  /// Runs body(chunk, word_begin, word_end) for every chunk — on the pool
  /// when partitioned, inline otherwise.
  template <typename Body>
  void Run(Body&& body) const {
    if (pool == nullptr) {
      body(0, size_t{0}, words);
      return;
    }
    pool->ParallelFor(chunks, [&](int c) {
      const size_t b = static_cast<size_t>(c) * words_per;
      const size_t e = std::min(words, b + words_per);
      if (b < e) body(c, b, e);
    });
  }
};

/// Calls fn(v) for every member of `set` with id in words [w_begin, w_end).
template <typename Fn>
void ForEachMember(const NodeBitset& set, size_t w_begin, size_t w_end,
                   Fn&& fn) {
  const uint64_t* words = set.words();
  for (size_t wi = w_begin; wi < w_end; ++wi) {
    uint64_t w = words[wi];
    while (w != 0) {
      const int bit = __builtin_ctzll(w);
      fn(static_cast<xml::NodeId>(wi * 64 + static_cast<size_t>(bit)));
      w &= w - 1;
    }
  }
}

/// Sparse-frontier gate. The per-node sweeps are O(|D|) regardless of the
/// frontier; the member-walk formulations below are O(|frontier| + output)
/// but write to arbitrary words, so they cannot partition. The cost model:
/// a member walk touching ~4 nodes per member beats a full per-node pass
/// (and beats forking, on any machine) whenever members*4 < |D| — the
/// "tiny frontiers must not pay fork/join" rule applied per sweep.
bool UseSparse(const NodeBitset& input, int32_t universe) {
  return input.Count() * 4 < universe;
}

}  // namespace

Axis InverseAxis(Axis axis) {
  switch (axis) {
    case Axis::kSelf: return Axis::kSelf;
    case Axis::kChild: return Axis::kParent;
    case Axis::kParent: return Axis::kChild;
    case Axis::kDescendant: return Axis::kAncestor;
    case Axis::kAncestor: return Axis::kDescendant;
    case Axis::kDescendantOrSelf: return Axis::kAncestorOrSelf;
    case Axis::kAncestorOrSelf: return Axis::kDescendantOrSelf;
    case Axis::kFollowing: return Axis::kPreceding;
    case Axis::kPreceding: return Axis::kFollowing;
    case Axis::kFollowingSibling: return Axis::kPrecedingSibling;
    case Axis::kPrecedingSibling: return Axis::kFollowingSibling;
  }
  GKX_CHECK(false);
  return Axis::kSelf;
}

// Each axis has up to two formulations. The dense, partitionable one keeps
// output-interval-local stores so SweepPlan chunks never race: a chunk only
// ever Set()s node ids inside its own word range (prefix-carrying
// recurrences become block scans: per-chunk partials, an O(chunks)
// sequential carry, an independent per-chunk pass). The sparse one walks
// the frontier members directly — O(|frontier| + output) instead of
// O(|D|) — but writes arbitrary words, so it runs on the calling thread;
// UseSparse picks it exactly when that is cheaper than any per-node pass.
NodeBitset AxisImage(const xml::Document& doc, Axis axis,
                     const NodeBitset& input, const SweepOptions& sweep) {
  const int32_t n = doc.size();
  GKX_CHECK_EQ(input.universe(), n);
  // Raw SoA columns: the sweeps below stream exactly the 4-byte stripe they
  // need, and every index is already range-proved by the plan/frontier.
  const xml::NodeId* const parent = doc.parent_data();
  const xml::NodeId* const first_child = doc.first_child_data();
  const xml::NodeId* const next_sibling = doc.next_sibling_data();
  const xml::NodeId* const prev_sibling = doc.prev_sibling_data();
  const int32_t* const subtree_size = doc.subtree_size_data();
  NodeBitset out(n);
  const SweepPlan plan = SweepPlan::Make(sweep, n, out.word_count());
  switch (axis) {
    case Axis::kSelf:
      out = input;
      return out;
    case Axis::kChild:
      if (UseSparse(input, n)) {
        // Child sets of distinct parents are disjoint — emit each member's
        // child list directly, O(Σ children of members).
        ForEachMember(input, 0, plan.words, [&](xml::NodeId u) {
          for (xml::NodeId c = first_child[u]; c != xml::kNullNode;
               c = next_sibling[c]) {
            out.Set(c);
          }
        });
        return out;
      }
      // Dense: y is a child of some x in input iff parent(y) ∈ input — a
      // pure per-output-node test, partitionable.
      plan.Run([&](int, size_t wb, size_t we) {
        const int32_t hi = plan.NodeHi(we, n);
        for (int32_t v = std::max(plan.NodeLo(wb), int32_t{1}); v < hi; ++v) {
          if (input.Test(parent[v])) out.Set(v);
        }
      });
      return out;
    case Axis::kParent:
      if (UseSparse(input, n)) {
        // O(|frontier|): one parent store per member.
        ForEachMember(input, 0, plan.words, [&](xml::NodeId u) {
          const xml::NodeId p = parent[u];
          if (p != xml::kNullNode) out.Set(p);
        });
        return out;
      }
      // Dense: v is a parent of some input node iff one of v's children is
      // in input — walk each output node's child list (O(n) aggregate;
      // every node is inspected once as a child).
      plan.Run([&](int, size_t wb, size_t we) {
        const int32_t hi = plan.NodeHi(we, n);
        for (int32_t v = plan.NodeLo(wb); v < hi; ++v) {
          for (xml::NodeId c = first_child[v]; c != xml::kNullNode;
               c = next_sibling[c]) {
            if (input.Test(c)) {
              out.Set(v);
              break;
            }
          }
        }
      });
      return out;
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf: {
      // A subtree is the contiguous preorder range [u, u + size(u)), so the
      // image is a union of intervals — and subtree intervals are nested or
      // disjoint, so members inside an already-covered interval contribute
      // nothing. Phase 1 (partitioned): each chunk walks its members in
      // preorder keeping a chunk-local cover watermark and emits only the
      // intervals that extend it. Phase 2 (sequential, O(intervals) word
      // fills): clip each interval against the global watermark and
      // SetRange the rest. Workers only read the input and append to
      // private vectors, so there is nothing to race on.
      const bool or_self = axis == Axis::kDescendantOrSelf;
      std::vector<std::vector<std::pair<int32_t, int32_t>>> intervals(
          static_cast<size_t>(plan.chunks));
      plan.Run([&](int c, size_t wb, size_t we) {
        auto& local = intervals[static_cast<size_t>(c)];
        int32_t cover = 0;
        ForEachMember(input, wb, we, [&](xml::NodeId u) {
          const int32_t end = u + subtree_size[u];
          if (end <= cover) return;  // nested under an earlier member
          const int32_t begin = or_self ? u : u + 1;
          if (begin < end) local.emplace_back(begin, end);
          cover = end;
        });
      });
      int32_t cover = 0;
      for (const auto& chunk : intervals) {
        for (const auto& [begin, end] : chunk) {
          const int32_t from = std::max(begin, cover);
          if (from < end) out.SetRange(from, end);
          cover = std::max(cover, end);
        }
      }
      return out;
    }
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      const bool sparse_or_self = axis == Axis::kAncestorOrSelf;
      if (UseSparse(input, n)) {
        // Chain walk with stop-on-marked: once a walk reaches a node some
        // earlier walk marked, everything above it is already (or will be)
        // marked by that walk — O(unique ancestors + |frontier|) total.
        ForEachMember(input, 0, plan.words, [&](xml::NodeId u) {
          if (sparse_or_self) out.Set(u);
          for (xml::NodeId a = parent[u];
               a != xml::kNullNode && !out.Test(a); a = parent[a]) {
            out.Set(a);
          }
        });
        return out;
      }
      // prefix[v] = |input ∩ [0, v)|; the members inside subtree(v) number
      // prefix[v + size(v)] − prefix[v]. Strict ancestors exclude v itself
      // (start the window at v + 1). prefix is a block scan: per-chunk
      // popcounts, sequential carry, per-chunk fill; the output pass then
      // only reads prefix (at indices that may cross chunks — fine).
      std::vector<int32_t> prefix(static_cast<size_t>(n) + 1, 0);
      std::vector<int32_t> base(static_cast<size_t>(plan.chunks) + 1, 0);
      plan.Run([&](int c, size_t wb, size_t we) {
        const uint64_t* words = input.words();
        int32_t count = 0;
        for (size_t w = wb; w < we; ++w) {
          count += static_cast<int32_t>(__builtin_popcountll(words[w]));
        }
        base[static_cast<size_t>(c) + 1] = count;
      });
      for (int c = 0; c < plan.chunks; ++c) {
        base[static_cast<size_t>(c) + 1] += base[static_cast<size_t>(c)];
      }
      plan.Run([&](int c, size_t wb, size_t we) {
        int32_t running = base[static_cast<size_t>(c)];
        const int32_t hi = plan.NodeHi(we, n);
        for (int32_t v = plan.NodeLo(wb); v < hi; ++v) {
          if (input.Test(v)) ++running;
          prefix[static_cast<size_t>(v) + 1] = running;
        }
      });
      const bool or_self = axis == Axis::kAncestorOrSelf;
      plan.Run([&](int, size_t wb, size_t we) {
        const int32_t hi = plan.NodeHi(we, n);
        for (int32_t v = plan.NodeLo(wb); v < hi; ++v) {
          const int32_t end = v + subtree_size[v];
          const int32_t from = or_self ? v : v + 1;
          if (prefix[static_cast<size_t>(end)] -
                  prefix[static_cast<size_t>(from)] >
              0) {
            out.Set(v);
          }
        }
      });
      return out;
    }
    case Axis::kFollowing: {
      // following(x) = [x + size(x), n); the union over input is the suffix
      // from the minimal cutoff (note a descendant of an input node can have
      // a smaller cutoff than the input node itself). Parallel min-reduce,
      // then one word-fill.
      std::vector<int32_t> local(static_cast<size_t>(plan.chunks), n);
      plan.Run([&](int c, size_t wb, size_t we) {
        int32_t m = n;
        ForEachMember(input, wb, we, [&](xml::NodeId v) {
          m = std::min(m, v + subtree_size[v]);
        });
        local[static_cast<size_t>(c)] = m;
      });
      int32_t cutoff = n;
      for (int32_t m : local) cutoff = std::min(cutoff, m);
      out.SetRange(cutoff, n);
      return out;
    }
    case Axis::kPreceding: {
      // y ∈ preceding(x) iff y + size(y) <= x; take the maximal input x
      // (parallel max-reduce), then a per-output-node test.
      std::vector<int32_t> local(static_cast<size_t>(plan.chunks), -1);
      plan.Run([&](int c, size_t wb, size_t we) {
        int32_t m = -1;
        ForEachMember(input, wb, we, [&](xml::NodeId v) { m = v; });
        local[static_cast<size_t>(c)] = m;
      });
      int32_t max_input = -1;
      for (int32_t m : local) max_input = std::max(max_input, m);
      if (max_input < 0) return out;
      plan.Run([&](int, size_t wb, size_t we) {
        const int32_t hi = plan.NodeHi(we, n);
        for (int32_t v = plan.NodeLo(wb); v < hi; ++v) {
          if (v + subtree_size[v] <= max_input) out.Set(v);
        }
      });
      return out;
    }
    case Axis::kFollowingSibling:
      // Sibling chains are pointer chases, not preorder prefixes, so they
      // stay sequential — but member walks with stop-on-marked make them
      // O(output + |frontier|) instead of O(|D|): once a walk reaches a
      // sibling an earlier walk marked, the rest of the chain is already
      // marked by that walk.
      ForEachMember(input, 0, plan.words, [&](xml::NodeId u) {
        for (xml::NodeId s = next_sibling[u];
             s != xml::kNullNode && !out.Test(s); s = next_sibling[s]) {
          out.Set(s);
        }
      });
      return out;
    case Axis::kPrecedingSibling:
      // Mirror walk along prev_sibling; sequential, as above.
      ForEachMember(input, 0, plan.words, [&](xml::NodeId u) {
        for (xml::NodeId s = prev_sibling[u];
             s != xml::kNullNode && !out.Test(s); s = prev_sibling[s]) {
          out.Set(s);
        }
      });
      return out;
  }
  GKX_CHECK(false);
  return out;
}

Result<Value> CoreLinearEvaluator::Evaluate(const xml::Document& doc,
                                            const xpath::Query& query,
                                            const Context& ctx) {
  if (doc.empty()) return InvalidArgumentError("empty document");
  xpath::FragmentReport report = xpath::Classify(query);
  if (!report.in_core) {
    return UnsupportedError(
        "core-linear evaluates Core XPath only (Def 2.5); query is outside");
  }
  Bind(doc);

  NodeBitset start(doc.size());
  start.Set(ctx.node);

  auto result = EvalNodeSetForward(query.root(), start);
  if (!result.ok()) return result.status();
  return Value::Nodes(result->ToNodeSet());
}

Result<NodeBitset> CoreLinearEvaluator::EvalNodeSetForward(
    const Expr& expr, const NodeBitset& start) {
  if (expr.kind() == Expr::Kind::kUnion) {
    const auto& u = expr.As<xpath::UnionExpr>();
    NodeBitset merged(doc_->size());
    for (size_t i = 0; i < u.branch_count(); ++i) {
      auto branch = EvalNodeSetForward(u.branch(i), start);
      if (!branch.ok()) return branch.status();
      merged |= *branch;
    }
    return merged;
  }
  return EvalPathForward(expr.As<PathExpr>(), start);
}

const NodeBitset& CoreLinearEvaluator::TestSet(const Step& step) {
  const xml::Document& doc = *doc_;
  const ResolvedTest test = ResolvedTest::Resolve(doc, step.test);
  const uint64_t key =
      (static_cast<uint64_t>(static_cast<uint32_t>(test.kind)) << 32) |
      static_cast<uint64_t>(static_cast<uint32_t>(test.name));
  auto cached = test_cache_.find(key);
  if (cached != test_cache_.end()) return cached->second;

  NodeBitset out(doc.size());
  if (test.kind != xpath::NodeTest::Kind::kName) {
    out.SetAll();  // kAny / kNode match every element node
  } else if (test.name != xml::kNoName) {
    const SweepPlan plan = SweepPlan::Make(sweep_, doc.size(), out.word_count());
    plan.Run([&](int, size_t wb, size_t we) {
      const int32_t hi = plan.NodeHi(we, doc.size());
      for (int32_t v = plan.NodeLo(wb); v < hi; ++v) {
        if (doc.NodeHasName(v, test.name)) out.Set(v);
      }
    });
  }
  // else: name never occurs in the document — empty set.
  return test_cache_.emplace(key, std::move(out)).first->second;
}

Result<NodeBitset> CoreLinearEvaluator::EvalStepRange(const PathExpr& path,
                                                      size_t begin, size_t end,
                                                      const NodeBitset& frontier) {
  GKX_CHECK(doc_ != nullptr);
  GKX_CHECK(begin <= end && end <= path.step_count());
  const xml::Document& doc = *doc_;
  NodeBitset current = frontier;
  std::vector<const NodeBitset*> masks;
  for (size_t s = begin; s < end; ++s) {
    const Step& step = path.step(s);
    current = AxisImage(doc, step.axis, current, sweep_);
    // Fused intersection: the test set and every predicate set are ANDed
    // into `current` in a single word-at-a-time pass over each chunk
    // instead of one full-bitset pass per mask.
    masks.clear();
    masks.push_back(&TestSet(step));
    for (const xpath::ExprPtr& predicate : step.predicates) {
      auto cond = ConditionSet(*predicate);
      if (!cond.ok()) return cond.status();
      masks.push_back(*cond);
    }
    const SweepPlan plan =
        SweepPlan::Make(sweep_, doc.size(), current.word_count());
    uint64_t* cur = current.words();
    plan.Run([&](int, size_t wb, size_t we) {
      for (size_t w = wb; w < we; ++w) {
        uint64_t word = cur[w];
        for (const NodeBitset* mask : masks) word &= mask->words()[w];
        cur[w] = word;
      }
    });
    if (current.Empty()) break;
  }
  return current;
}

Result<NodeBitset> CoreLinearEvaluator::EvalPathForward(const PathExpr& path,
                                                        const NodeBitset& start) {
  const xml::Document& doc = *doc_;
  NodeBitset current(doc.size());
  if (path.absolute()) {
    current.Set(doc.root());
  } else {
    current = start;
  }
  return EvalStepRange(path, 0, path.step_count(), current);
}

Result<NodeBitset> CoreLinearEvaluator::PathOriginSet(const PathExpr& path) {
  const xml::Document& doc = *doc_;
  // Right-to-left: R = nodes from which the remaining steps can match.
  NodeBitset reach(doc.size());
  reach.SetAll();
  for (size_t s = path.step_count(); s-- > 0;) {
    const Step& step = path.step(s);
    NodeBitset target = std::move(reach);
    target &= TestSet(step);
    for (const xpath::ExprPtr& predicate : step.predicates) {
      auto cond = ConditionSet(*predicate);
      if (!cond.ok()) return cond.status();
      target &= **cond;
    }
    reach = AxisImage(doc, InverseAxis(step.axis), target, sweep_);
  }
  if (path.absolute()) {
    // The path matches from anywhere iff it matches from the root.
    NodeBitset out(doc.size());
    if (reach.Test(doc.root())) out.SetAll();
    return out;
  }
  return reach;
}

Result<const NodeBitset*> CoreLinearEvaluator::ConditionSet(const Expr& expr) {
  auto cached = condition_cache_.find(expr.id());
  if (cached != condition_cache_.end()) return &cached->second;

  Result<NodeBitset> result = [&]() -> Result<NodeBitset> {
    switch (expr.kind()) {
      case Expr::Kind::kBinary: {
        const auto& binary = expr.As<xpath::BinaryExpr>();
        auto lhs = ConditionSet(binary.lhs());
        if (!lhs.ok()) return lhs.status();
        auto rhs = ConditionSet(binary.rhs());
        if (!rhs.ok()) return rhs.status();
        NodeBitset out = **lhs;
        if (binary.op() == BinaryOp::kAnd) {
          out &= **rhs;
        } else {
          GKX_CHECK(binary.op() == BinaryOp::kOr);
          out |= **rhs;
        }
        return out;
      }
      case Expr::Kind::kFunctionCall: {
        const auto& call = expr.As<xpath::FunctionCall>();
        GKX_CHECK(call.function() == Function::kNot);
        auto arg = ConditionSet(call.arg(0));
        if (!arg.ok()) return arg.status();
        NodeBitset out = **arg;
        out.Complement();
        return out;
      }
      case Expr::Kind::kPath:
        return PathOriginSet(expr.As<PathExpr>());
      case Expr::Kind::kUnion: {
        const auto& u = expr.As<xpath::UnionExpr>();
        NodeBitset out(doc_->size());
        for (size_t i = 0; i < u.branch_count(); ++i) {
          auto branch = ConditionSet(u.branch(i));
          if (!branch.ok()) return branch.status();
          out |= **branch;
        }
        return out;
      }
      default:
        return UnsupportedError("non-Core condition in core-linear evaluator");
    }
  }();

  if (!result.ok()) return result.status();
  return &condition_cache_.emplace(expr.id(), std::move(*result)).first->second;
}

}  // namespace gkx::eval
