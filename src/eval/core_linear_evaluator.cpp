#include "eval/core_linear_evaluator.hpp"

#include <utility>

#include "xpath/fragment.hpp"

namespace gkx::eval {

using xpath::Axis;
using xpath::BinaryOp;
using xpath::Expr;
using xpath::Function;
using xpath::PathExpr;
using xpath::Step;

Axis InverseAxis(Axis axis) {
  switch (axis) {
    case Axis::kSelf: return Axis::kSelf;
    case Axis::kChild: return Axis::kParent;
    case Axis::kParent: return Axis::kChild;
    case Axis::kDescendant: return Axis::kAncestor;
    case Axis::kAncestor: return Axis::kDescendant;
    case Axis::kDescendantOrSelf: return Axis::kAncestorOrSelf;
    case Axis::kAncestorOrSelf: return Axis::kDescendantOrSelf;
    case Axis::kFollowing: return Axis::kPreceding;
    case Axis::kPreceding: return Axis::kFollowing;
    case Axis::kFollowingSibling: return Axis::kPrecedingSibling;
    case Axis::kPrecedingSibling: return Axis::kFollowingSibling;
  }
  GKX_CHECK(false);
  return Axis::kSelf;
}

NodeBitset AxisImage(const xml::Document& doc, Axis axis,
                     const NodeBitset& input) {
  const int32_t n = doc.size();
  GKX_CHECK_EQ(input.universe(), n);
  NodeBitset out(n);
  switch (axis) {
    case Axis::kSelf:
      out = input;
      return out;
    case Axis::kChild:
      // y is a child of some x in input iff parent(y) ∈ input.
      for (xml::NodeId v = 1; v < n; ++v) {
        if (input.Test(doc.node(v).parent)) out.Set(v);
      }
      return out;
    case Axis::kParent:
      for (xml::NodeId v = 0; v < n; ++v) {
        if (input.Test(v) && doc.node(v).parent != xml::kNullNode) {
          out.Set(doc.node(v).parent);
        }
      }
      return out;
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf: {
      // Subtrees are contiguous preorder ranges: difference-array sweep.
      std::vector<int32_t> diff(static_cast<size_t>(n) + 1, 0);
      for (xml::NodeId v = 0; v < n; ++v) {
        if (!input.Test(v)) continue;
        const int32_t lo = axis == Axis::kDescendant ? v + 1 : v;
        const int32_t hi = v + doc.node(v).subtree_size;
        ++diff[static_cast<size_t>(lo)];
        --diff[static_cast<size_t>(hi)];
      }
      int32_t active = 0;
      for (xml::NodeId v = 0; v < n; ++v) {
        active += diff[static_cast<size_t>(v)];
        if (active > 0) out.Set(v);
      }
      return out;
    }
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      // subtree_count[v] = |input ∩ subtree(v)|, by a reverse (bottom-up)
      // sweep; y is an ancestor of some input node iff its subtree minus
      // itself contains one.
      std::vector<int32_t> count(static_cast<size_t>(n), 0);
      for (xml::NodeId v = n - 1; v >= 0; --v) {
        if (input.Test(v)) ++count[static_cast<size_t>(v)];
        if (v > 0) {
          count[static_cast<size_t>(doc.node(v).parent)] +=
              count[static_cast<size_t>(v)];
        }
      }
      for (xml::NodeId v = 0; v < n; ++v) {
        const int32_t below =
            count[static_cast<size_t>(v)] - (input.Test(v) ? 1 : 0);
        if (axis == Axis::kAncestor ? below > 0
                                    : count[static_cast<size_t>(v)] > 0) {
          out.Set(v);
        }
      }
      return out;
    }
    case Axis::kFollowing: {
      // following(x) = [x + size(x), n); the union over input is the suffix
      // from the minimal cutoff (note a descendant of an input node can have
      // a smaller cutoff than the input node itself).
      int32_t cutoff = n;
      for (xml::NodeId v = 0; v < n; ++v) {
        if (input.Test(v)) {
          cutoff = std::min(cutoff, v + doc.node(v).subtree_size);
        }
      }
      for (xml::NodeId v = cutoff; v < n; ++v) out.Set(v);
      return out;
    }
    case Axis::kPreceding: {
      // y ∈ preceding(x) iff y + size(y) <= x; take the maximal input x.
      int32_t max_input = -1;
      for (xml::NodeId v = n - 1; v >= 0; --v) {
        if (input.Test(v)) {
          max_input = v;
          break;
        }
      }
      if (max_input < 0) return out;
      for (xml::NodeId v = 0; v < n; ++v) {
        if (v + doc.node(v).subtree_size <= max_input) out.Set(v);
      }
      return out;
    }
    case Axis::kFollowingSibling:
      // Recurrence along sibling chains in increasing id order:
      // y qualifies iff its previous sibling is in input or qualifies.
      for (xml::NodeId v = 0; v < n; ++v) {
        const xml::NodeId prev = doc.node(v).prev_sibling;
        if (prev != xml::kNullNode && (input.Test(prev) || out.Test(prev))) {
          out.Set(v);
        }
      }
      return out;
    case Axis::kPrecedingSibling:
      // Mirror recurrence in decreasing id order.
      for (xml::NodeId v = n - 1; v >= 0; --v) {
        const xml::NodeId next = doc.node(v).next_sibling;
        if (next != xml::kNullNode && (input.Test(next) || out.Test(next))) {
          out.Set(v);
        }
      }
      return out;
  }
  GKX_CHECK(false);
  return out;
}

Result<Value> CoreLinearEvaluator::Evaluate(const xml::Document& doc,
                                            const xpath::Query& query,
                                            const Context& ctx) {
  if (doc.empty()) return InvalidArgumentError("empty document");
  xpath::FragmentReport report = xpath::Classify(query);
  if (!report.in_core) {
    return UnsupportedError(
        "core-linear evaluates Core XPath only (Def 2.5); query is outside");
  }
  Bind(doc);

  NodeBitset start(doc.size());
  start.Set(ctx.node);

  auto result = EvalNodeSetForward(query.root(), start);
  if (!result.ok()) return result.status();
  return Value::Nodes(result->ToNodeSet());
}

Result<NodeBitset> CoreLinearEvaluator::EvalNodeSetForward(
    const Expr& expr, const NodeBitset& start) {
  if (expr.kind() == Expr::Kind::kUnion) {
    const auto& u = expr.As<xpath::UnionExpr>();
    NodeBitset merged(doc_->size());
    for (size_t i = 0; i < u.branch_count(); ++i) {
      auto branch = EvalNodeSetForward(u.branch(i), start);
      if (!branch.ok()) return branch.status();
      merged |= *branch;
    }
    return merged;
  }
  return EvalPathForward(expr.As<PathExpr>(), start);
}

NodeBitset CoreLinearEvaluator::TestSet(const Step& step) {
  const xml::Document& doc = *doc_;
  NodeBitset out(doc.size());
  ResolvedTest test = ResolvedTest::Resolve(doc, step.test);
  for (xml::NodeId v = 0; v < doc.size(); ++v) {
    if (test.Matches(doc, v)) out.Set(v);
  }
  return out;
}

Result<NodeBitset> CoreLinearEvaluator::EvalStepRange(const PathExpr& path,
                                                      size_t begin, size_t end,
                                                      const NodeBitset& frontier) {
  GKX_CHECK(doc_ != nullptr);
  GKX_CHECK(begin <= end && end <= path.step_count());
  const xml::Document& doc = *doc_;
  NodeBitset current = frontier;
  for (size_t s = begin; s < end; ++s) {
    const Step& step = path.step(s);
    current = AxisImage(doc, step.axis, current);
    current &= TestSet(step);
    for (const xpath::ExprPtr& predicate : step.predicates) {
      auto cond = ConditionSet(*predicate);
      if (!cond.ok()) return cond.status();
      current &= *cond;
    }
    if (current.Empty()) break;
  }
  return current;
}

Result<NodeBitset> CoreLinearEvaluator::EvalPathForward(const PathExpr& path,
                                                        const NodeBitset& start) {
  const xml::Document& doc = *doc_;
  NodeBitset current(doc.size());
  if (path.absolute()) {
    current.Set(doc.root());
  } else {
    current = start;
  }
  return EvalStepRange(path, 0, path.step_count(), current);
}

Result<NodeBitset> CoreLinearEvaluator::PathOriginSet(const PathExpr& path) {
  const xml::Document& doc = *doc_;
  // Right-to-left: R = nodes from which the remaining steps can match.
  NodeBitset reach(doc.size());
  reach.SetAll();
  for (size_t s = path.step_count(); s-- > 0;) {
    const Step& step = path.step(s);
    NodeBitset target = std::move(reach);
    target &= TestSet(step);
    for (const xpath::ExprPtr& predicate : step.predicates) {
      auto cond = ConditionSet(*predicate);
      if (!cond.ok()) return cond.status();
      target &= *cond;
    }
    reach = AxisImage(doc, InverseAxis(step.axis), target);
  }
  if (path.absolute()) {
    // The path matches from anywhere iff it matches from the root.
    NodeBitset out(doc.size());
    if (reach.Test(doc.root())) out.SetAll();
    return out;
  }
  return reach;
}

Result<NodeBitset> CoreLinearEvaluator::ConditionSet(const Expr& expr) {
  auto cached = condition_cache_.find(expr.id());
  if (cached != condition_cache_.end()) return cached->second;

  Result<NodeBitset> result = [&]() -> Result<NodeBitset> {
    switch (expr.kind()) {
      case Expr::Kind::kBinary: {
        const auto& binary = expr.As<xpath::BinaryExpr>();
        auto lhs = ConditionSet(binary.lhs());
        if (!lhs.ok()) return lhs.status();
        auto rhs = ConditionSet(binary.rhs());
        if (!rhs.ok()) return rhs.status();
        NodeBitset out = *lhs;
        if (binary.op() == BinaryOp::kAnd) {
          out &= *rhs;
        } else {
          GKX_CHECK(binary.op() == BinaryOp::kOr);
          out |= *rhs;
        }
        return out;
      }
      case Expr::Kind::kFunctionCall: {
        const auto& call = expr.As<xpath::FunctionCall>();
        GKX_CHECK(call.function() == Function::kNot);
        auto arg = ConditionSet(call.arg(0));
        if (!arg.ok()) return arg.status();
        NodeBitset out = *arg;
        out.Complement();
        return out;
      }
      case Expr::Kind::kPath:
        return PathOriginSet(expr.As<PathExpr>());
      case Expr::Kind::kUnion: {
        const auto& u = expr.As<xpath::UnionExpr>();
        NodeBitset out(doc_->size());
        for (size_t i = 0; i < u.branch_count(); ++i) {
          auto branch = ConditionSet(u.branch(i));
          if (!branch.ok()) return branch.status();
          out |= *branch;
        }
        return out;
      }
      default:
        return UnsupportedError("non-Core condition in core-linear evaluator");
    }
  }();

  if (result.ok()) condition_cache_.emplace(expr.id(), *result);
  return result;
}

}  // namespace gkx::eval
