// Multi-threaded realization of Remark 5.6: because pWF/pXPath evaluation is
// in LOGCFL ⊆ NC2, the per-candidate Singleton-Success checks of Theorem 5.5
// are independent and can run in parallel. This engine partitions the
// candidate result nodes over a shared ThreadPool (base/thread_pool.hpp),
// each worker running its own PdaEvaluator instance (memo tables are
// worker-local). Results are deterministic and identical to the sequential
// engines.

#ifndef GKX_EVAL_PARALLEL_EVALUATOR_HPP_
#define GKX_EVAL_PARALLEL_EVALUATOR_HPP_

#include "base/thread_pool.hpp"
#include "eval/pda_evaluator.hpp"

namespace gkx::eval {

class ParallelPdaEvaluator : public Evaluator {
 public:
  struct Options {
    /// Concurrent workers; 0 = the pool's width.
    int threads = 0;
    PdaEvaluator::Options pda;
    /// Pool to run on; nullptr = ThreadPool::Shared(). Workers beyond the
    /// pool's width queue behind it (plus the calling thread, which helps).
    ThreadPool* pool = nullptr;
  };

  ParallelPdaEvaluator() = default;
  explicit ParallelPdaEvaluator(Options options) : options_(options) {}

  std::string_view name() const override { return "parallel-pda"; }

  Result<Value> Evaluate(const xml::Document& doc, const xpath::Query& query,
                         const Context& ctx) override;

 private:
  Options options_{};
};

}  // namespace gkx::eval

#endif  // GKX_EVAL_PARALLEL_EVALUATOR_HPP_
