// Multi-threaded realization of Remark 5.6: because pWF/pXPath evaluation is
// in LOGCFL ⊆ NC2, the per-candidate Singleton-Success checks of Theorem 5.5
// are independent and can run in parallel. This engine partitions the
// candidate result nodes over a thread pool, each thread running its own
// PdaEvaluator instance (memo tables are thread-local). Results are
// deterministic and identical to the sequential engines.

#ifndef GKX_EVAL_PARALLEL_EVALUATOR_HPP_
#define GKX_EVAL_PARALLEL_EVALUATOR_HPP_

#include "eval/pda_evaluator.hpp"

namespace gkx::eval {

class ParallelPdaEvaluator : public Evaluator {
 public:
  struct Options {
    /// Worker threads; 0 = std::thread::hardware_concurrency().
    int threads = 0;
    PdaEvaluator::Options pda;
  };

  ParallelPdaEvaluator() = default;
  explicit ParallelPdaEvaluator(Options options) : options_(options) {}

  std::string_view name() const override { return "parallel-pda"; }

  Result<Value> Evaluate(const xml::Document& doc, const xpath::Query& query,
                         const Context& ctx) override;

 private:
  Options options_{};
};

}  // namespace gkx::eval

#endif  // GKX_EVAL_PARALLEL_EVALUATOR_HPP_
