#include "eval/parallel_evaluator.hpp"

#include <atomic>
#include <memory>
#include <utility>
#include <vector>

namespace gkx::eval {

Result<Value> ParallelPdaEvaluator::Evaluate(const xml::Document& doc,
                                             const xpath::Query& query,
                                             const Context& ctx) {
  if (xpath::StaticType(query.root()) != ValueType::kNodeSet) {
    // Scalar results have nothing to fan out over; delegate.
    PdaEvaluator sequential(options_.pda);
    return sequential.Evaluate(doc, query, ctx);
  }

  ThreadPool& pool = options_.pool ? *options_.pool : ThreadPool::Shared();
  int threads = options_.threads > 0 ? options_.threads : pool.thread_count();
  if (threads < 1) threads = 1;
  const int32_t n = doc.size();
  if (threads > n) threads = n;

  // One flag per candidate; workers claim candidates via an atomic cursor
  // (dynamic load balancing — candidate costs are highly skewed).
  std::vector<uint8_t> selected(static_cast<size_t>(n), 0);
  std::vector<Status> failures(static_cast<size_t>(threads), Status::Ok());
  std::atomic<int32_t> cursor{0};
  constexpr int32_t kChunk = 16;

  auto worker = [&](int thread_index) {
    PdaEvaluator pda(options_.pda);
    while (true) {
      const int32_t begin = cursor.fetch_add(kChunk);
      if (begin >= n) return;
      const int32_t end = begin + kChunk < n ? begin + kChunk : n;
      for (int32_t v = begin; v < end; ++v) {
        auto in = pda.CheckCandidate(doc, query, ctx, v);
        if (!in.ok()) {
          failures[static_cast<size_t>(thread_index)] = in.status();
          return;
        }
        selected[static_cast<size_t>(v)] = *in ? 1 : 0;
      }
    }
  };

  if (threads == 1) {
    worker(0);
  } else {
    pool.ParallelFor(threads, worker);
  }

  for (const Status& status : failures) {
    if (!status.ok()) return status;
  }
  NodeSet out;
  for (int32_t v = 0; v < n; ++v) {
    if (selected[static_cast<size_t>(v)]) out.push_back(v);
  }
  return Value::Nodes(std::move(out));
}

}  // namespace gkx::eval
