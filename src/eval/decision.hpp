// The Singleton-Success decision problem, exactly as in Definition 5.3:
//
//   Input: (D, Q, c⃗, v) — a document, a query, a context triple, and a
//   value v (a number/string if Q has that type, `true` if Q is boolean, a
//   single node if Q is node-set typed).
//   Question: does Q on (D, c⃗) evaluate to v — resp. to a node set
//   containing v?
//
// Two deciders are provided: the NAuxPDA simulation (the Lemma 5.4
// algorithm, applicable to pWF/pXPath inputs) and a reference decider on
// top of any Evaluator. The equivalence of the two on pWF is asserted by
// the test suite — it is the content of Lemma 5.4.

#ifndef GKX_EVAL_DECISION_HPP_
#define GKX_EVAL_DECISION_HPP_

#include "eval/evaluator.hpp"
#include "eval/pda_evaluator.hpp"

namespace gkx::eval {

/// An instance of the Definition 5.3 problem. For node-set queries, `value`
/// must be a singleton node-set.
struct SingletonSuccessInstance {
  const xml::Document* doc = nullptr;
  const xpath::Query* query = nullptr;
  Context context;
  Value value;
};

/// Validates the instance's typing rules from Definition 5.3 (booleans may
/// only be checked for `true`; node-set values must be singletons; the
/// value type must match the query's static type).
Status ValidateInstance(const SingletonSuccessInstance& instance);

/// Reference decider: evaluates Q with `engine` and compares.
Result<bool> DecideSingletonSuccess(const SingletonSuccessInstance& instance,
                                    Evaluator* engine);

/// The Lemma 5.4 decider: NAuxPDA simulation, pWF/pXPath only (returns
/// kUnsupported outside). Never materializes node sets.
Result<bool> DecideSingletonSuccessPda(const SingletonSuccessInstance& instance,
                                       PdaEvaluator::Options options = {});

}  // namespace gkx::eval

#endif  // GKX_EVAL_DECISION_HPP_
