// The evaluator interface shared by the five engines of this repository
// (naive, context-value-table, Core-XPath-linear, NAuxPDA, parallel), plus
// the step-application machinery common to the recursive engines: axis
// enumeration in axis order, predicate chains with position re-ranking
// between iterated predicates, and the numeric-predicate coercion
// ([2] == [position()=2]).

#ifndef GKX_EVAL_EVALUATOR_HPP_
#define GKX_EVAL_EVALUATOR_HPP_

#include <functional>
#include <string_view>
#include <vector>

#include "base/status.hpp"
#include "eval/axes.hpp"
#include "eval/context.hpp"
#include "eval/value.hpp"
#include "xpath/ast.hpp"

namespace gkx::eval {

/// Common interface. Evaluators are stateful per call but reusable; they are
/// not thread-safe unless documented otherwise.
class Evaluator {
 public:
  virtual ~Evaluator() = default;

  /// Short identifier ("naive", "cvt-lazy", "core-linear", "pda", ...).
  virtual std::string_view name() const = 0;

  /// Evaluates `query` on `doc` in context `ctx`. Returns kUnsupported if the
  /// query falls outside this engine's fragment.
  virtual Result<Value> Evaluate(const xml::Document& doc,
                                 const xpath::Query& query,
                                 const Context& ctx) = 0;

  /// Evaluate in the initial context ⟨root, 1, 1⟩.
  Result<Value> EvaluateAtRoot(const xml::Document& doc,
                               const xpath::Query& query) {
    return Evaluate(doc, query, RootContext(doc));
  }

  /// Evaluate at root and require a node-set result.
  Result<NodeSet> EvaluateNodeSet(const xml::Document& doc,
                                  const xpath::Query& query);
};

/// Truth of a predicate value in a context: numbers are implicit position
/// tests ([2] means [position()=2]); everything else is boolean().
bool PredicateTruth(const Value& value, const Context& ctx);

/// Evaluation of a predicate expression in a context: Result<bool>.
using PredicateFn =
    std::function<Result<bool>(const xpath::Expr&, const Context&)>;

/// Applies one location step from `origin`: enumerates axis::test candidates
/// in axis order, filters through the predicate chain (positions re-ranked
/// among survivors between consecutive predicates), and appends the
/// survivors to *out in axis order.
Status ApplyStep(const xml::Document& doc, const xpath::Step& step,
                 const ResolvedTest& test, xml::NodeId origin,
                 const PredicateFn& eval_predicate,
                 std::vector<xml::NodeId>* out);

}  // namespace gkx::eval

#endif  // GKX_EVAL_EVALUATOR_HPP_
