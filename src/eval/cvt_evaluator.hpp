// The context-value-table evaluator — the paper's polynomial-time
// combined-complexity algorithm ([3], recalled in Prop 2.7 and Thms 7.2/7.3).
//
// Every subexpression owns a table from *meaningful contexts* to values.
// Static analysis decides what a context is for each subexpression:
//   * constants and absolute paths        -> a single cell,
//   * anything position()/last()-free     -> keyed by the context node,
//   * position()/last()-dependent         -> keyed by ⟨node, pos, size⟩.
// Tables are filled on demand (lazy mode) or by a bottom-up pass over all
// nodes (eager mode — the literal bottom-up algorithm of [3]; tables for
// position-dependent predicates are always demand-filled with exactly the
// contexts that arise, which is the paper's "one tuple for each meaningful
// context"). Both modes share the semantics kernel of RecursiveEvaluatorBase,
// so they agree with the naive evaluator by construction; the complexity
// drops from exponential to polynomial because each (expression, context)
// pair is computed at most once.

#ifndef GKX_EVAL_CVT_EVALUATOR_HPP_
#define GKX_EVAL_CVT_EVALUATOR_HPP_

#include <optional>
#include <unordered_map>
#include <vector>

#include "eval/recursive_base.hpp"

namespace gkx::eval {

class CvtEvaluator : public RecursiveEvaluatorBase {
 public:
  struct Options {
    /// Eager = fill each node-dependent table for all |D| contexts bottom-up
    /// before answering (paper-faithful); lazy = memoize on demand.
    bool eager = false;
  };

  CvtEvaluator() = default;
  explicit CvtEvaluator(Options options) : options_(options) {}

  std::string_view name() const override {
    return options_.eager ? "cvt-eager" : "cvt-lazy";
  }

  /// Total entries stored across all tables by the last Evaluate call.
  int64_t last_table_entries() const { return table_entries_; }

 protected:
  Status Prepare() override;
  bool LookupMemo(const xpath::Expr& expr, const Context& ctx,
                  Value* out) override;
  void StoreMemo(const xpath::Expr& expr, const Context& ctx,
                 const Value& value) override;

 private:
  Options options_{};
  xpath::QueryAnalysis analysis_;
  // Per expression id: one of the three table shapes (selected by the
  // expression's context dependence).
  std::vector<std::optional<Value>> constant_;
  std::vector<std::unordered_map<xml::NodeId, Value>> by_node_;
  std::vector<std::unordered_map<uint64_t, Value>> by_context_;
  int64_t table_entries_ = 0;
};

}  // namespace gkx::eval

#endif  // GKX_EVAL_CVT_EVALUATOR_HPP_
