// The context-value-table evaluator — the paper's polynomial-time
// combined-complexity algorithm ([3], recalled in Prop 2.7 and Thms 7.2/7.3).
//
// Every subexpression owns a table from *meaningful contexts* to values.
// Static analysis decides what a context is for each subexpression:
//   * constants and absolute paths        -> a single cell,
//   * anything position()/last()-free     -> keyed by the context node,
//   * position()/last()-dependent         -> keyed by ⟨node, pos, size⟩.
// Tables are filled on demand (lazy mode) or by a bottom-up pass over all
// nodes (eager mode — the literal bottom-up algorithm of [3]; tables for
// position-dependent predicates are always demand-filled with exactly the
// contexts that arise, which is the paper's "one tuple for each meaningful
// context"). Both modes share the semantics kernel of RecursiveEvaluatorBase,
// so they agree with the naive evaluator by construction; the complexity
// drops from exponential to polynomial because each (expression, context)
// pair is computed at most once.

#ifndef GKX_EVAL_CVT_EVALUATOR_HPP_
#define GKX_EVAL_CVT_EVALUATOR_HPP_

#include <atomic>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "eval/recursive_base.hpp"

namespace gkx::eval {

class CvtEvaluator : public RecursiveEvaluatorBase {
 public:
  struct Options {
    /// Eager = fill each node-dependent table for all |D| contexts bottom-up
    /// before answering (paper-faithful); lazy = memoize on demand.
    bool eager = false;
  };

  CvtEvaluator() = default;
  explicit CvtEvaluator(Options options) : options_(options) {}

  std::string_view name() const override {
    return options_.eager ? "cvt-eager" : "cvt-lazy";
  }

  /// Total entries stored across all tables by the last Evaluate call.
  int64_t last_table_entries() const {
    return table_entries_.load(std::memory_order_relaxed);
  }

  /// Concurrent-memo mode for the parallel staged executor: several workers
  /// drive ApplyBoundStep on ONE bound engine, sharing the context-value
  /// tables. Each expression id gets its own shared_mutex — lookups take a
  /// shared lock (hits proceed concurrently, never serialized), stores take
  /// a unique lock with first-writer-wins emplace (values are deterministic,
  /// so racing computations of the same cell agree). Must be set before
  /// Bind; off (the default) keeps the lock-free single-thread path.
  void set_concurrent(bool concurrent) { concurrent_ = concurrent; }

 protected:
  Status Prepare() override;
  bool LookupMemo(const xpath::Expr& expr, const Context& ctx,
                  Value* out) override;
  void StoreMemo(const xpath::Expr& expr, const Context& ctx,
                 const Value& value) override;

 private:
  Options options_{};
  xpath::QueryAnalysis analysis_;
  // Per expression id: one of the three table shapes (selected by the
  // expression's context dependence).
  std::vector<std::optional<Value>> constant_;
  std::vector<std::unordered_map<xml::NodeId, Value>> by_node_;
  std::vector<std::unordered_map<uint64_t, Value>> by_context_;
  std::atomic<int64_t> table_entries_{0};
  bool concurrent_ = false;
  // Binding the evaluator is idempotent: when Bind sees the exact same
  // (document, query) pair — identified by (address, serial) on both sides,
  // so recycled allocations can't alias — and the concurrency mode is
  // unchanged, Prepare keeps the filled tables. Cell values are pure
  // functions of (expression, context) over an immutable document, so a
  // warm table returns byte-identical answers; a long-lived engine re-
  // running the same plan pays the memo fills once. Any mismatch rebuilds
  // everything.
  const xml::Document* bound_doc_ = nullptr;
  uint64_t bound_doc_serial_ = 0;
  const xpath::Query* bound_query_ = nullptr;
  uint64_t bound_query_serial_ = 0;
  bool bound_concurrent_ = false;
  // One lock per expression id (allocated by Prepare in concurrent mode):
  // contention is per-table, and a lookup of one subexpression never waits
  // on a store into another.
  std::unique_ptr<std::shared_mutex[]> expr_mu_;
};

}  // namespace gkx::eval

#endif  // GKX_EVAL_CVT_EVALUATOR_HPP_
