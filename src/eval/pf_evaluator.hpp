// The PF (predicate-free paths) specialist — the membership half of
// Theorem 4.3: "we can just guess the path while we verify it in L". The
// nondeterministic log-space machine guesses one axis edge per step;
// deterministically that is a frontier sweep — one bitset image per step,
// O(|D|) each, O(|D|·|Q|) total and only two bitsets of working memory.
// Rejects anything with predicates (kUnsupported): this engine exists to
// make the NL upper bound tangible, not to compete with core-linear.

#ifndef GKX_EVAL_PF_EVALUATOR_HPP_
#define GKX_EVAL_PF_EVALUATOR_HPP_

#include "eval/core_linear_evaluator.hpp"  // SweepOptions
#include "eval/evaluator.hpp"

namespace gkx::eval {

class PfEvaluator : public Evaluator {
 public:
  std::string_view name() const override { return "pf-frontier"; }

  Result<Value> Evaluate(const xml::Document& doc, const xpath::Query& query,
                         const Context& ctx) override;

  /// Partitioned-sweep settings for the frontier sweeps (the PF fragment is
  /// in NL ⊆ LOGCFL — the same interval parallelism applies). Defaults to
  /// sequential.
  void set_sweep_options(const SweepOptions& sweep) { sweep_ = sweep; }

 private:
  SweepOptions sweep_;
};

}  // namespace gkx::eval

#endif  // GKX_EVAL_PF_EVALUATOR_HPP_
