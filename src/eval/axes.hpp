// The axis engine: enumeration of the 11 paper axes in *axis order*
// (document order for forward axes, reverse document order for the reverse
// axes ancestor/ancestor-or-self/preceding/preceding-sibling — XPath
// proximity positions count along this order), constant-time membership
// tests, and streaming position/size computation (the "never materialize the
// node set Y" observation at the heart of Lemma 5.4).

#ifndef GKX_EVAL_AXES_HPP_
#define GKX_EVAL_AXES_HPP_

#include <vector>

#include "eval/node_set.hpp"
#include "xml/document.hpp"
#include "xpath/ast.hpp"

namespace gkx::eval {

/// A node test with the name pre-resolved against a document's name pool
/// (kNoName means the name never occurs, so nothing matches).
struct ResolvedTest {
  xpath::NodeTest::Kind kind = xpath::NodeTest::Kind::kAny;
  xml::NameId name = xml::kNoName;

  static ResolvedTest Resolve(const xml::Document& doc,
                              const xpath::NodeTest& test) {
    ResolvedTest out;
    out.kind = test.kind;
    if (test.kind == xpath::NodeTest::Kind::kName) {
      out.name = doc.FindName(test.name);
    }
    return out;
  }

  bool Matches(const xml::Document& doc, xml::NodeId node) const {
    switch (kind) {
      case xpath::NodeTest::Kind::kAny:
      case xpath::NodeTest::Kind::kNode:
        return true;
      case xpath::NodeTest::Kind::kName:
        return name != xml::kNoName && doc.NodeHasName(node, name);
    }
    GKX_CHECK(false);
    return false;
  }
};

/// Calls fn(node) for every node on `axis` from `origin`, in axis order.
/// fn returns bool: false stops the enumeration early.
template <typename Fn>
void ForEachOnAxis(const xml::Document& doc, xml::NodeId origin,
                   xpath::Axis axis, Fn&& fn) {
  using xpath::Axis;
  switch (axis) {
    case Axis::kSelf:
      fn(origin);
      return;
    case Axis::kChild:
      for (xml::NodeId c = doc.first_child(origin); c != xml::kNullNode;
           c = doc.next_sibling(c)) {
        if (!fn(c)) return;
      }
      return;
    case Axis::kParent:
      if (doc.parent(origin) != xml::kNullNode) fn(doc.parent(origin));
      return;
    case Axis::kDescendant:
      for (xml::NodeId v = origin + 1; v < origin + doc.subtree_size(origin);
           ++v) {
        if (!fn(v)) return;
      }
      return;
    case Axis::kDescendantOrSelf:
      for (xml::NodeId v = origin; v < origin + doc.subtree_size(origin);
           ++v) {
        if (!fn(v)) return;
      }
      return;
    case Axis::kAncestor:
      for (xml::NodeId a = doc.parent(origin); a != xml::kNullNode;
           a = doc.parent(a)) {
        if (!fn(a)) return;
      }
      return;
    case Axis::kAncestorOrSelf:
      for (xml::NodeId a = origin; a != xml::kNullNode; a = doc.parent(a)) {
        if (!fn(a)) return;
      }
      return;
    case Axis::kFollowing:
      for (xml::NodeId v = origin + doc.subtree_size(origin); v < doc.size();
           ++v) {
        if (!fn(v)) return;
      }
      return;
    case Axis::kFollowingSibling:
      for (xml::NodeId s = doc.next_sibling(origin); s != xml::kNullNode;
           s = doc.next_sibling(s)) {
        if (!fn(s)) return;
      }
      return;
    case Axis::kPreceding:
      // Reverse document order, skipping ancestors.
      for (xml::NodeId v = origin - 1; v >= 0; --v) {
        if (v + doc.subtree_size(v) <= origin) {
          if (!fn(v)) return;
        }
      }
      return;
    case Axis::kPrecedingSibling:
      for (xml::NodeId s = doc.prev_sibling(origin); s != xml::kNullNode;
           s = doc.prev_sibling(s)) {
        if (!fn(s)) return;
      }
      return;
  }
  GKX_CHECK(false);
}

/// True iff `target` lies on `axis` from `origin`. O(1) except parent-chain
/// axes on degenerate trees.
bool AxisContains(const xml::Document& doc, xml::NodeId origin,
                  xpath::Axis axis, xml::NodeId target);

/// Nodes on the axis passing the test, in axis order.
std::vector<xml::NodeId> AxisNodes(const xml::Document& doc, xml::NodeId origin,
                                   xpath::Axis axis, const ResolvedTest& test);

/// Streaming position/size: if `target` is on the axis and passes the test,
/// returns true and sets *position (1-based proximity rank among test-passing
/// axis nodes) and *size (their total count) — without materializing the set.
bool AxisPositionOf(const xml::Document& doc, xml::NodeId origin,
                    xpath::Axis axis, const ResolvedTest& test,
                    xml::NodeId target, int64_t* position, int64_t* size);

}  // namespace gkx::eval

#endif  // GKX_EVAL_AXES_HPP_
