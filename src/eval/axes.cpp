#include "eval/axes.hpp"

namespace gkx::eval {

using xpath::Axis;

bool AxisContains(const xml::Document& doc, xml::NodeId origin, Axis axis,
                  xml::NodeId target) {
  switch (axis) {
    case Axis::kSelf:
      return target == origin;
    case Axis::kChild:
      return doc.parent(target) == origin;
    case Axis::kParent:
      return doc.parent(origin) == target;
    case Axis::kDescendant:
      return target > origin && target < origin + doc.subtree_size(origin);
    case Axis::kDescendantOrSelf:
      return target >= origin && target < origin + doc.subtree_size(origin);
    case Axis::kAncestor:
      return target != origin && doc.IsAncestorOrSelf(target, origin);
    case Axis::kAncestorOrSelf:
      return doc.IsAncestorOrSelf(target, origin);
    case Axis::kFollowing:
      return target >= origin + doc.subtree_size(origin);
    case Axis::kFollowingSibling:
      return target != origin && doc.parent(target) == doc.parent(origin) &&
             doc.parent(origin) != xml::kNullNode && target > origin;
    case Axis::kPreceding:
      return target + doc.subtree_size(target) <= origin;
    case Axis::kPrecedingSibling:
      return target != origin && doc.parent(target) == doc.parent(origin) &&
             doc.parent(origin) != xml::kNullNode && target < origin;
  }
  GKX_CHECK(false);
  return false;
}

std::vector<xml::NodeId> AxisNodes(const xml::Document& doc, xml::NodeId origin,
                                   Axis axis, const ResolvedTest& test) {
  std::vector<xml::NodeId> out;
  ForEachOnAxis(doc, origin, axis, [&](xml::NodeId v) {
    if (test.Matches(doc, v)) out.push_back(v);
    return true;
  });
  return out;
}

bool AxisPositionOf(const xml::Document& doc, xml::NodeId origin, Axis axis,
                    const ResolvedTest& test, xml::NodeId target,
                    int64_t* position, int64_t* size) {
  if (!AxisContains(doc, origin, axis, target) || !test.Matches(doc, target)) {
    return false;
  }
  int64_t rank = 0;
  int64_t count = 0;
  ForEachOnAxis(doc, origin, axis, [&](xml::NodeId v) {
    if (test.Matches(doc, v)) {
      ++count;
      if (v == target) rank = count;
    }
    return true;
  });
  GKX_CHECK_GT(rank, 0);
  *position = rank;
  *size = count;
  return true;
}

}  // namespace gkx::eval
