#include "eval/evaluator.hpp"

#include <utility>

namespace gkx::eval {

Result<NodeSet> Evaluator::EvaluateNodeSet(const xml::Document& doc,
                                           const xpath::Query& query) {
  auto value = EvaluateAtRoot(doc, query);
  if (!value.ok()) return value.status();
  if (!value->is_node_set()) {
    return InvalidArgumentError(
        "query does not evaluate to a node-set (got " +
        std::string(xpath::ValueTypeName(value->type())) + ")");
  }
  return std::move(value).value().TakeNodes();
}

bool PredicateTruth(const Value& value, const Context& ctx) {
  if (value.type() == ValueType::kNumber) {
    return value.number() == static_cast<double>(ctx.position);
  }
  return value.ToBoolean();
}

Status ApplyStep(const xml::Document& doc, const xpath::Step& step,
                 const ResolvedTest& test, xml::NodeId origin,
                 const PredicateFn& eval_predicate,
                 std::vector<xml::NodeId>* out) {
  std::vector<xml::NodeId> candidates = AxisNodes(doc, origin, step.axis, test);
  for (const xpath::ExprPtr& predicate : step.predicates) {
    if (candidates.empty()) break;
    std::vector<xml::NodeId> survivors;
    survivors.reserve(candidates.size());
    const int64_t size = static_cast<int64_t>(candidates.size());
    for (int64_t i = 0; i < size; ++i) {
      Context ctx{candidates[static_cast<size_t>(i)], i + 1, size};
      auto keep = eval_predicate(*predicate, ctx);
      if (!keep.ok()) return keep.status();
      if (*keep) survivors.push_back(ctx.node);
    }
    candidates = std::move(survivors);  // re-ranked for the next predicate
  }
  out->insert(out->end(), candidates.begin(), candidates.end());
  return Status::Ok();
}

}  // namespace gkx::eval
