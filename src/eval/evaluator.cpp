#include "eval/evaluator.hpp"

#include <utility>

namespace gkx::eval {

Result<NodeSet> Evaluator::EvaluateNodeSet(const xml::Document& doc,
                                           const xpath::Query& query) {
  auto value = EvaluateAtRoot(doc, query);
  if (!value.ok()) return value.status();
  if (!value->is_node_set()) {
    return InvalidArgumentError(
        "query does not evaluate to a node-set (got " +
        std::string(xpath::ValueTypeName(value->type())) + ")");
  }
  return std::move(value).value().TakeNodes();
}

bool PredicateTruth(const Value& value, const Context& ctx) {
  if (value.type() == ValueType::kNumber) {
    return value.number() == static_cast<double>(ctx.position);
  }
  return value.ToBoolean();
}

namespace {

/// Static shapes whose survivor set is a pure index selection — the
/// classic XPath positional fast path. [k], [position() = k], and
/// [position() = last()] pick one candidate without evaluating anything
/// per candidate (a predicate eval costs axis-order position bookkeeping
/// plus an expression walk per candidate; the selection is O(1)).
/// kNone means "evaluate normally". Semantics are identical by
/// construction: positions are 1-based ranks in the same candidate order
/// the per-candidate loop would have used.
struct PositionalShape {
  enum Kind { kNone, kIndex, kLast } kind = kNone;
  int64_t index = 0;  // for kIndex, the 1-based position

  static PositionalShape Of(const xpath::Expr& predicate) {
    using xpath::Expr;
    using xpath::Function;
    using xpath::FunctionCall;
    if (predicate.kind() == Expr::Kind::kNumberLiteral) {
      return FromNumber(predicate.As<xpath::NumberLiteral>().value());
    }
    if (predicate.kind() != Expr::Kind::kBinary) return {};
    const auto& binary = predicate.As<xpath::BinaryExpr>();
    if (binary.op() != xpath::BinaryOp::kEq) return {};
    const Expr* position = &binary.lhs();
    const Expr* target = &binary.rhs();
    if (!IsCall(*position, Function::kPosition)) {
      std::swap(position, target);
    }
    if (!IsCall(*position, Function::kPosition)) return {};
    if (IsCall(*target, Function::kLast)) {
      return PositionalShape{kLast, 0};
    }
    if (target->kind() == Expr::Kind::kNumberLiteral) {
      return FromNumber(target->As<xpath::NumberLiteral>().value());
    }
    return {};
  }

 private:
  static bool IsCall(const xpath::Expr& expr, xpath::Function fn) {
    return expr.kind() == xpath::Expr::Kind::kFunctionCall &&
           expr.As<xpath::FunctionCall>().function() == fn &&
           expr.As<xpath::FunctionCall>().arg_count() == 0;
  }
  static PositionalShape FromNumber(double value) {
    const auto index = static_cast<int64_t>(value);
    // Non-integral or non-positive positions match nothing; an empty
    // selection falls out of the out-of-range check at the use site.
    if (static_cast<double>(index) != value || index < 1) {
      return PositionalShape{kIndex, 0};
    }
    return PositionalShape{kIndex, index};
  }
};

/// Recycled candidate buffers for ApplyStep. The per-origin cvt loop calls
/// ApplyStep once per origin — on a frontier of thousands of origins the
/// malloc/free pair of a fresh candidates vector dominates the (often
/// empty) axis walk itself. The pool is a per-thread stack because
/// ApplyStep re-enters through predicate evaluation (a predicate's path
/// runs ApplyStep on its own origins), and the cvt origin loop fans out
/// across pool workers, each of which gets its own stack. A buffer that
/// leaves via an error return simply isn't recycled — no leak, the pool
/// just refills later.
std::vector<std::vector<xml::NodeId>>& BufferPool() {
  thread_local std::vector<std::vector<xml::NodeId>> pool;
  return pool;
}

std::vector<xml::NodeId> AcquireBuffer() {
  auto& pool = BufferPool();
  if (pool.empty()) return {};
  std::vector<xml::NodeId> buffer = std::move(pool.back());
  pool.pop_back();
  buffer.clear();
  return buffer;
}

void RecycleBuffer(std::vector<xml::NodeId>&& buffer) {
  BufferPool().push_back(std::move(buffer));
}

}  // namespace

Status ApplyStep(const xml::Document& doc, const xpath::Step& step,
                 const ResolvedTest& test, xml::NodeId origin,
                 const PredicateFn& eval_predicate,
                 std::vector<xml::NodeId>* out) {
  // Predicate-free steps never need the candidate list at all: survivors
  // are exactly the test-passing axis nodes, streamed straight into `out`
  // in axis order (the same order AxisNodes materializes).
  if (step.predicates.empty()) {
    ForEachOnAxis(doc, origin, step.axis, [&](xml::NodeId v) {
      if (test.Matches(doc, v)) out->push_back(v);
      return true;
    });
    return Status::Ok();
  }
  std::vector<xml::NodeId> candidates = AcquireBuffer();
  ForEachOnAxis(doc, origin, step.axis, [&](xml::NodeId v) {
    if (test.Matches(doc, v)) candidates.push_back(v);
    return true;
  });
  for (const xpath::ExprPtr& predicate : step.predicates) {
    if (candidates.empty()) break;
    const PositionalShape positional = PositionalShape::Of(*predicate);
    if (positional.kind != PositionalShape::kNone) {
      const auto size = static_cast<int64_t>(candidates.size());
      const int64_t index =
          positional.kind == PositionalShape::kLast ? size : positional.index;
      if (index < 1 || index > size) {
        candidates.clear();
      } else {
        candidates.assign(1, candidates[static_cast<size_t>(index - 1)]);
      }
      continue;
    }
    std::vector<xml::NodeId> survivors = AcquireBuffer();
    survivors.reserve(candidates.size());
    const int64_t size = static_cast<int64_t>(candidates.size());
    for (int64_t i = 0; i < size; ++i) {
      Context ctx{candidates[static_cast<size_t>(i)], i + 1, size};
      auto keep = eval_predicate(*predicate, ctx);
      if (!keep.ok()) return keep.status();
      if (*keep) survivors.push_back(ctx.node);
    }
    std::swap(candidates, survivors);  // re-ranked for the next predicate
    RecycleBuffer(std::move(survivors));
  }
  out->insert(out->end(), candidates.begin(), candidates.end());
  RecycleBuffer(std::move(candidates));
  return Status::Ok();
}

}  // namespace gkx::eval
