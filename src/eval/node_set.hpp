// Node-set representations: the public NodeSet (sorted vector in document
// order — XPath node-sets are duplicate-free and delivered in document
// order) and NodeBitset, the dense set the linear-time Core XPath evaluator
// sweeps over.

#ifndef GKX_EVAL_NODE_SET_HPP_
#define GKX_EVAL_NODE_SET_HPP_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "base/check.hpp"
#include "xml/document.hpp"

namespace gkx::eval {

/// Sorted (document order), duplicate-free set of nodes.
using NodeSet = std::vector<xml::NodeId>;

/// Sorts and removes duplicates in place.
inline void SortUnique(NodeSet* set) {
  std::sort(set->begin(), set->end());
  set->erase(std::unique(set->begin(), set->end()), set->end());
}

/// Binary-search membership test (set must be sorted).
inline bool SetContains(const NodeSet& set, xml::NodeId node) {
  return std::binary_search(set.begin(), set.end(), node);
}

/// Merges two sorted sets.
inline NodeSet UnionSets(const NodeSet& a, const NodeSet& b) {
  NodeSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

/// Fixed-universe bitset over node ids [0, size).
class NodeBitset {
 public:
  explicit NodeBitset(int32_t universe = 0) { Resize(universe); }

  void Resize(int32_t universe) {
    GKX_CHECK_GE(universe, 0);
    universe_ = universe;
    words_.assign(static_cast<size_t>((universe + 63) / 64), 0);
  }

  int32_t universe() const { return universe_; }

  void Set(xml::NodeId node) {
    GKX_CHECK(node >= 0 && node < universe_);
    words_[static_cast<size_t>(node >> 6)] |= uint64_t{1} << (node & 63);
  }

  bool Test(xml::NodeId node) const {
    GKX_CHECK(node >= 0 && node < universe_);
    return (words_[static_cast<size_t>(node >> 6)] >> (node & 63)) & 1;
  }

  void SetAll() {
    for (auto& w : words_) w = ~uint64_t{0};
    ClearSlack();
  }

  /// Sets every bit in [lo, hi) word-at-a-time.
  void SetRange(int32_t lo, int32_t hi) {
    GKX_CHECK(0 <= lo && lo <= hi && hi <= universe_);
    if (lo == hi) return;
    const size_t first = static_cast<size_t>(lo >> 6);
    const size_t last = static_cast<size_t>((hi - 1) >> 6);
    const uint64_t head = ~uint64_t{0} << (lo & 63);
    const uint64_t tail = ~uint64_t{0} >> (63 - ((hi - 1) & 63));
    if (first == last) {
      words_[first] |= head & tail;
      return;
    }
    words_[first] |= head;
    for (size_t w = first + 1; w < last; ++w) words_[w] = ~uint64_t{0};
    words_[last] |= tail;
  }

  /// Raw word storage (64 node bits per word, little-endian bit order). The
  /// partitioned sweeps intersect sets word-at-a-time over disjoint word
  /// ranges — no two workers touch the same uint64_t.
  size_t word_count() const { return words_.size(); }
  uint64_t* words() { return words_.data(); }
  const uint64_t* words() const { return words_.data(); }

  void Clear() {
    for (auto& w : words_) w = 0;
  }

  NodeBitset& operator&=(const NodeBitset& other) {
    GKX_CHECK_EQ(universe_, other.universe_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }

  NodeBitset& operator|=(const NodeBitset& other) {
    GKX_CHECK_EQ(universe_, other.universe_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }

  /// this := this & ~other.
  NodeBitset& AndNot(const NodeBitset& other) {
    GKX_CHECK_EQ(universe_, other.universe_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
    return *this;
  }

  void Complement() {
    for (auto& w : words_) w = ~w;
    ClearSlack();
  }

  bool Empty() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  int32_t Count() const {
    int32_t count = 0;
    for (uint64_t w : words_) count += static_cast<int32_t>(__builtin_popcountll(w));
    return count;
  }

  /// All members in ascending (document) order.
  NodeSet ToNodeSet() const {
    NodeSet out;
    out.reserve(static_cast<size_t>(Count()));
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        int bit = __builtin_ctzll(w);
        out.push_back(static_cast<xml::NodeId>(wi * 64 + static_cast<size_t>(bit)));
        w &= w - 1;
      }
    }
    return out;
  }

  static NodeBitset FromNodeSet(const NodeSet& set, int32_t universe) {
    NodeBitset out(universe);
    for (xml::NodeId v : set) out.Set(v);
    return out;
  }

 private:
  void ClearSlack() {
    const int32_t slack = universe_ & 63;
    if (slack != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << slack) - 1;
    }
  }

  int32_t universe_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace gkx::eval

#endif  // GKX_EVAL_NODE_SET_HPP_
