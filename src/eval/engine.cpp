#include "eval/engine.hpp"

#include <utility>

namespace gkx::eval {

Result<Engine::Answer> Engine::Run(const xml::Document& doc,
                                   std::string_view query_text) {
  auto query = xpath::ParseQuery(query_text);
  if (!query.ok()) return query.status();
  return Run(doc, *query, RootContext(doc));
}

Result<Engine::Answer> Engine::Run(const xml::Document& doc,
                                   const xpath::Query& query,
                                   const Context& ctx) {
  Answer answer;
  answer.fragment = xpath::Classify(query);
  Evaluator& engine = answer.fragment.in_pf
                          ? static_cast<Evaluator&>(pf_)
                          : answer.fragment.in_core
                                ? static_cast<Evaluator&>(linear_)
                                : static_cast<Evaluator&>(cvt_);
  answer.evaluator = std::string(engine.name());
  auto value = engine.Evaluate(doc, query, ctx);
  if (!value.ok()) return value.status();
  answer.value = std::move(value).value();
  return answer;
}

}  // namespace gkx::eval
