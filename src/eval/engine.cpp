#include "eval/engine.hpp"

#include <utility>

namespace gkx::eval {

namespace {

Engine::Choice Dispatch(const xpath::FragmentReport& fragment) {
  if (fragment.in_pf) return Engine::Choice::kPfFrontier;
  if (fragment.in_core) return Engine::Choice::kCoreLinear;
  return Engine::Choice::kCvt;
}

}  // namespace

std::string_view Engine::EvaluatorName(Choice choice) {
  // Name-only instances: the engines carry no construction-time state, and
  // routing through their name() keeps this in lockstep with the strings
  // RunDispatched reports.
  static const PfEvaluator pf_names;
  static const CoreLinearEvaluator linear_names;
  static const CvtEvaluator cvt_names;
  switch (choice) {
    case Choice::kPfFrontier:
      return pf_names.name();
    case Choice::kCoreLinear:
      return linear_names.name();
    case Choice::kCvt:
      return cvt_names.name();
  }
  GKX_CHECK(false);
  return "";
}

Result<Engine::Plan> Engine::Compile(std::string_view query_text) {
  auto query = xpath::ParseQuery(query_text);
  if (!query.ok()) return query.status();
  return CompileParsed(std::move(query).value());
}

Engine::Plan Engine::CompileParsed(xpath::Query query) {
  xpath::FragmentReport fragment = xpath::Classify(query);
  Choice choice = Dispatch(fragment);
  return Plan{std::move(query), std::move(fragment), choice};
}

Result<Engine::Answer> Engine::RunDispatched(
    const xml::Document& doc, const xpath::Query& query,
    const xpath::FragmentReport& fragment, Choice choice, const Context& ctx) {
  Answer answer;
  answer.fragment = fragment;
  Evaluator& engine = choice == Choice::kPfFrontier
                          ? static_cast<Evaluator&>(pf_)
                          : choice == Choice::kCoreLinear
                                ? static_cast<Evaluator&>(linear_)
                                : static_cast<Evaluator&>(cvt_);
  answer.evaluator = std::string(engine.name());
  auto value = engine.Evaluate(doc, query, ctx);
  if (!value.ok()) return value.status();
  answer.value = std::move(value).value();
  return answer;
}

Result<Engine::Answer> Engine::RunPlan(const xml::Document& doc,
                                       const Plan& plan, const Context& ctx) {
  return RunDispatched(doc, plan.query, plan.fragment, plan.choice, ctx);
}

Result<Engine::Answer> Engine::Run(const xml::Document& doc,
                                   std::string_view query_text) {
  auto plan = Compile(query_text);
  if (!plan.ok()) return plan.status();
  return RunPlan(doc, *plan, RootContext(doc));
}

Result<Engine::Answer> Engine::Run(const xml::Document& doc,
                                   const xpath::Query& query,
                                   const Context& ctx) {
  xpath::FragmentReport fragment = xpath::Classify(query);
  Choice choice = Dispatch(fragment);
  return RunDispatched(doc, query, fragment, choice, ctx);
}

}  // namespace gkx::eval
