#include "eval/engine.hpp"

#include <utility>

#include "plan/exec.hpp"

namespace gkx::eval {

namespace {

Engine::Choice Dispatch(const xpath::FragmentReport& fragment) {
  if (fragment.in_pf) return Engine::Choice::kPfFrontier;
  if (fragment.in_core) return Engine::Choice::kCoreLinear;
  return Engine::Choice::kCvt;
}

}  // namespace

Result<Engine::Plan> Engine::Compile(std::string_view query_text) {
  auto query = xpath::ParseQuery(query_text);
  if (!query.ok()) return query.status();
  return CompileParsed(std::move(query).value());
}

Engine::Plan Engine::CompileParsed(xpath::Query query) {
  return plan::Compile(std::move(query));
}

Result<Engine::Answer> Engine::RunDispatched(
    const xml::Document& doc, const xpath::Query& query,
    const xpath::FragmentReport& fragment, Choice choice, const Context& ctx) {
  Answer answer;
  answer.fragment = fragment;
  Evaluator& engine = choice == Choice::kPfFrontier
                          ? static_cast<Evaluator&>(pf_)
                          : choice == Choice::kCoreLinear
                                ? static_cast<Evaluator&>(linear_)
                                : static_cast<Evaluator&>(cvt_);
  answer.evaluator = std::string(engine.name());
  auto value = engine.Evaluate(doc, query, ctx);
  if (!value.ok()) return value.status();
  answer.value = std::move(value).value();
  return answer;
}

Result<Engine::Answer> Engine::RunPlan(const xml::Document& doc,
                                       const Plan& plan, const Context& ctx,
                                       plan::ExecTrace* trace) {
  if (!plan.staged) {
    return RunDispatched(doc, plan.query, plan.fragment, plan.choice, ctx);
  }
  // Lend this engine's evaluators to the run: an Engine lives across
  // requests, so its binds (test-set bitsets, context-value tables) stay
  // warm for repeat executions of the same plan on the same document —
  // the prepared-statement pattern. Safe because Engine is single-
  // threaded by contract and the evaluators rebuild on any identity change.
  plan::ExecOptions opts = exec_opts_;
  opts.linear = &linear_;
  opts.cvt = &cvt_;
  auto value = plan::ExecuteStaged(doc, plan, ctx, trace, opts, exec_stats_);
  if (!value.ok()) return value.status();
  Answer answer;
  answer.value = std::move(value).value();
  answer.fragment = plan.fragment;
  answer.evaluator = plan.route_label;
  return answer;
}

Result<Engine::Answer> Engine::Run(const xml::Document& doc,
                                   std::string_view query_text) {
  auto plan = Compile(query_text);
  if (!plan.ok()) return plan.status();
  return RunPlan(doc, *plan, RootContext(doc));
}

Result<Engine::Answer> Engine::Run(const xml::Document& doc,
                                   const xpath::Query& query,
                                   const Context& ctx) {
  xpath::FragmentReport fragment = xpath::Classify(query);
  Choice choice = Dispatch(fragment);
  return RunDispatched(doc, query, fragment, choice, ctx);
}

}  // namespace gkx::eval
