// Shared recursive semantics kernel. NaiveEvaluator instantiates it with no
// memoization — the direct functional reading of the spec, exponential in |Q|
// on nested conditions exactly like the 2003-era engines described in the
// paper's introduction. CvtEvaluator adds the context-value tables of
// Gottlob–Koch–Pichler [3] on top of the *same* kernel, turning it into the
// polynomial combined-complexity algorithm (Prop 2.7 / Thm 7.2).

#ifndef GKX_EVAL_RECURSIVE_BASE_HPP_
#define GKX_EVAL_RECURSIVE_BASE_HPP_

#include <atomic>
#include <cstdint>
#include <vector>

#include "eval/evaluator.hpp"
#include "xpath/analysis.hpp"

namespace gkx::eval {

class RecursiveEvaluatorBase : public Evaluator {
 public:
  Result<Value> Evaluate(const xml::Document& doc, const xpath::Query& query,
                         const Context& ctx) override;

  /// Number of expression evaluations performed by the last Evaluate call
  /// (memo hits excluded) — the work measure the experiments report.
  int64_t last_eval_count() const {
    return eval_count_.load(std::memory_order_relaxed);
  }

  /// Binds doc/query (resolving node tests, resetting counters, running the
  /// subclass Prepare) without evaluating anything. The staged plan executor
  /// uses this to drive individual steps of a bound query through this
  /// engine's memo tables via ApplyBoundStep.
  Status Bind(const xml::Document& doc, const xpath::Query& query);

  /// Applies one step of the bound query from `origin` (predicates evaluated
  /// recursively on this engine, positions re-ranked per the spec), appending
  /// the survivors in axis order. Bind must have been called.
  Status ApplyBoundStep(const xpath::Step& step, xml::NodeId origin,
                        NodeSet* out);

 protected:
  /// Memo hooks; the base implementations are no-ops (naive semantics).
  virtual bool LookupMemo(const xpath::Expr& expr, const Context& ctx,
                          Value* out);
  virtual void StoreMemo(const xpath::Expr& expr, const Context& ctx,
                         const Value& value);

  /// Called once per Evaluate() after doc/query are bound, before the root
  /// expression is evaluated. Subclasses set up tables / eager prepasses.
  virtual Status Prepare();

  /// Recursive evaluation (memoized via the hooks).
  Result<Value> Eval(const xpath::Expr& expr, const Context& ctx);

  /// Location-path evaluation from an origin node.
  Result<NodeSet> EvalPathFrom(const xpath::PathExpr& path, xml::NodeId origin);

  const xml::Document& doc() const { return *doc_; }
  const xpath::Query& query() const { return *query_; }

 private:
  Result<Value> EvalBinary(const xpath::BinaryExpr& binary, const Context& ctx);
  Result<Value> EvalFunction(const xpath::FunctionCall& call, const Context& ctx);
  Result<NodeSet> EvalNodeSetExpr(const xpath::Expr& expr, const Context& ctx);

  const xml::Document* doc_ = nullptr;
  const xpath::Query* query_ = nullptr;
  std::vector<ResolvedTest> tests_;  // by step id
  /// Atomic so concurrent per-origin step application (the parallel staged
  /// executor drives one bound engine from several workers) counts without
  /// tearing; relaxed — it is a statistic, not a synchronization point.
  std::atomic<int64_t> eval_count_{0};
};

/// The direct spec-reading evaluator (no memoization; exponential combined
/// complexity on nested conditions).
class NaiveEvaluator : public RecursiveEvaluatorBase {
 public:
  std::string_view name() const override { return "naive"; }
};

}  // namespace gkx::eval

#endif  // GKX_EVAL_RECURSIVE_BASE_HPP_
