// The O(|D|·|Q|) Core XPath evaluator of Gottlob–Koch–Pichler [3]
// (Prop 2.7). Set-at-a-time: conditions are evaluated bottom-up as *sets of
// nodes satisfying them* (bitsets), location paths as set-to-set axis images;
// every axis image is computed by an O(|D|) tree sweep, so total time is
// O(|D|·|Q|). Supports exactly Core XPath (Def 2.5): paths, predicates with
// and/or/not, union — anything else returns kUnsupported.

#ifndef GKX_EVAL_CORE_LINEAR_EVALUATOR_HPP_
#define GKX_EVAL_CORE_LINEAR_EVALUATOR_HPP_

#include <unordered_map>

#include "eval/evaluator.hpp"

namespace gkx::eval {

/// Computes the image of `input` under `axis`: { y : ∃x ∈ input, y ∈ axis(x) }.
/// One O(|D|) sweep per call (document order / subtree-range / sibling-chain
/// recurrences — see the implementation notes).
NodeBitset AxisImage(const xml::Document& doc, xpath::Axis axis,
                     const NodeBitset& input);

/// The axis χ' with y ∈ χ'(x) iff x ∈ χ(y) (child↔parent, descendant↔ancestor,
/// following↔preceding, self↔self, ...-sibling mirrored).
xpath::Axis InverseAxis(xpath::Axis axis);

class CoreLinearEvaluator : public Evaluator {
 public:
  std::string_view name() const override { return "core-linear"; }

  Result<Value> Evaluate(const xml::Document& doc, const xpath::Query& query,
                         const Context& ctx) override;

  /// Binds a document, clearing the per-query condition cache. The staged
  /// plan executor binds once per execution and then runs step ranges.
  void Bind(const xml::Document& doc) {
    doc_ = &doc;
    condition_cache_.clear();
  }

  /// Applies steps [begin, end) of `path` to the `frontier` set-at-a-time:
  /// one axis image + test/condition intersection per step, O(|D|) each.
  /// Every predicate in the range must be a Core bexpr (kUnsupported
  /// otherwise). Bind must have been called.
  Result<NodeBitset> EvalStepRange(const xpath::PathExpr& path, size_t begin,
                                   size_t end, const NodeBitset& frontier);

 private:
  /// Set of nodes where the Core XPath condition holds (bexpr of Def 2.5).
  Result<NodeBitset> ConditionSet(const xpath::Expr& expr);

  /// Set of nodes from which the path (suffix starting at `step_index`)
  /// selects at least one node — computed right-to-left via inverse axes.
  Result<NodeBitset> PathOriginSet(const xpath::PathExpr& path);

  /// Forward evaluation: image of `start` under the whole path.
  Result<NodeBitset> EvalPathForward(const xpath::PathExpr& path,
                                     const NodeBitset& start);

  /// Forward evaluation of a path-or-union expression.
  Result<NodeBitset> EvalNodeSetForward(const xpath::Expr& expr,
                                        const NodeBitset& start);

  NodeBitset TestSet(const xpath::Step& step);

  const xml::Document* doc_ = nullptr;
  // Condition sets are shared across all uses of a subexpression (the query
  // is processed as a DAG of conditions), keyed by expression id.
  std::unordered_map<int, NodeBitset> condition_cache_;
};

}  // namespace gkx::eval

#endif  // GKX_EVAL_CORE_LINEAR_EVALUATOR_HPP_
