// The O(|D|·|Q|) Core XPath evaluator of Gottlob–Koch–Pichler [3]
// (Prop 2.7). Set-at-a-time: conditions are evaluated bottom-up as *sets of
// nodes satisfying them* (bitsets), location paths as set-to-set axis images;
// every axis image is computed by an O(|D|) tree sweep, so total time is
// O(|D|·|Q|). Supports exactly Core XPath (Def 2.5): paths, predicates with
// and/or/not, union — anything else returns kUnsupported.
//
// Parallel sweeps: the Core/PF fragments sit in LOGCFL — the paper's whole
// point is that they are highly parallelizable — and the O(|D|) sweeps
// realize that directly: the node universe is partitioned into
// word-aligned preorder intervals (subtrees are contiguous preorder
// ranges), each ThreadPool worker sweeps its interval, and no two workers
// ever touch the same output uint64_t. Axes whose sequential recurrence
// carries a prefix (descendant*/ancestor*) run as two-phase block scans
// (per-interval partials, a tiny sequential carry combine, then an
// independent per-interval pass). The sibling axes keep their sequential
// chain recurrence — their pointer-chase order resists interval
// partitioning and they are rare in the measured workloads (the cost model
// in plan/physical.hpp treats them as sequential-only).

#ifndef GKX_EVAL_CORE_LINEAR_EVALUATOR_HPP_
#define GKX_EVAL_CORE_LINEAR_EVALUATOR_HPP_

#include <cstdint>
#include <unordered_map>

#include "base/thread_pool.hpp"
#include "eval/evaluator.hpp"

namespace gkx::eval {

/// How bitset sweeps (axis images, test-set fills, predicate
/// intersections) are partitioned across a ThreadPool. workers <= 1 — or a
/// universe below min_parallel_nodes — keeps every sweep sequential: a
/// fork/join over a tiny frontier costs more than the sweep itself.
struct SweepOptions {
  /// Pool to fan out on; nullptr with workers > 1 = ThreadPool::Shared().
  ThreadPool* pool = nullptr;
  /// Concurrent sweep workers (the calling thread participates); <= 1 runs
  /// sequentially.
  int workers = 1;
  /// Documents smaller than this never partition (fork/join overhead
  /// dominates sub-millisecond sweeps; see the cost model notes in
  /// plan/physical.hpp).
  int32_t min_parallel_nodes = 4096;

  bool ShouldPartition(int32_t universe) const {
    return workers > 1 && universe >= min_parallel_nodes;
  }
};

/// Computes the image of `input` under `axis`: { y : ∃x ∈ input, y ∈ axis(x) }.
/// One O(|D|) sweep per call (document order / subtree-range / sibling-chain
/// recurrences — see the implementation notes), partitioned per `sweep`.
NodeBitset AxisImage(const xml::Document& doc, xpath::Axis axis,
                     const NodeBitset& input, const SweepOptions& sweep);

/// Sequential convenience overload.
inline NodeBitset AxisImage(const xml::Document& doc, xpath::Axis axis,
                            const NodeBitset& input) {
  return AxisImage(doc, axis, input, SweepOptions{});
}

/// The axis χ' with y ∈ χ'(x) iff x ∈ χ(y) (child↔parent, descendant↔ancestor,
/// following↔preceding, self↔self, ...-sibling mirrored).
xpath::Axis InverseAxis(xpath::Axis axis);

class CoreLinearEvaluator : public Evaluator {
 public:
  std::string_view name() const override { return "core-linear"; }

  Result<Value> Evaluate(const xml::Document& doc, const xpath::Query& query,
                         const Context& ctx) override;

  /// Binds a document. The condition cache is query-scoped (keyed by
  /// expression id, which collides across queries), so it always clears;
  /// the test-set cache is document-scoped, so rebinding the SAME document
  /// — identified by (address, serial), never by address alone — keeps it
  /// warm. A long-lived evaluator thus pays each O(|D|) test fill once per
  /// (document, name), not once per run; answers are identical either way
  /// because documents are immutable.
  void Bind(const xml::Document& doc) {
    condition_cache_.clear();
    if (doc_ == &doc && bound_serial_ == doc.serial()) return;
    doc_ = &doc;
    bound_serial_ = doc.serial();
    test_cache_.clear();
  }

  /// Sweep partitioning for this evaluator's axis images / test fills /
  /// predicate intersections. Defaults to sequential.
  void set_sweep_options(const SweepOptions& sweep) { sweep_ = sweep; }

  /// Applies steps [begin, end) of `path` to the `frontier` set-at-a-time:
  /// one axis image + test/condition intersection per step, O(|D|) each.
  /// Every predicate in the range must be a Core bexpr (kUnsupported
  /// otherwise). Bind must have been called.
  Result<NodeBitset> EvalStepRange(const xpath::PathExpr& path, size_t begin,
                                   size_t end, const NodeBitset& frontier);

 private:
  /// Set of nodes where the Core XPath condition holds (bexpr of Def 2.5).
  /// Returns a pointer into condition_cache_ (stable until the next Bind) so
  /// fused intersection passes can AND several cached sets without copying.
  Result<const NodeBitset*> ConditionSet(const xpath::Expr& expr);

  /// Set of nodes from which the path (suffix starting at `step_index`)
  /// selects at least one node — computed right-to-left via inverse axes.
  Result<NodeBitset> PathOriginSet(const xpath::PathExpr& path);

  /// Forward evaluation: image of `start` under the whole path.
  Result<NodeBitset> EvalPathForward(const xpath::PathExpr& path,
                                     const NodeBitset& start);

  /// Forward evaluation of a path-or-union expression.
  Result<NodeBitset> EvalNodeSetForward(const xpath::Expr& expr,
                                        const NodeBitset& start);

  /// Nodes passing the step's node test. Cached per Bind, keyed by the
  /// resolved test — a query touching the same name on several steps used
  /// to rescan all of doc (and re-resolve the name) once per step of every
  /// segment; now each distinct test is one O(|D|) fill per bound document.
  const NodeBitset& TestSet(const xpath::Step& step);

  const xml::Document* doc_ = nullptr;
  uint64_t bound_serial_ = 0;  // serial of *doc_ when test_cache_ was built
  SweepOptions sweep_;
  // Condition sets are shared across all uses of a subexpression (the query
  // is processed as a DAG of conditions), keyed by expression id.
  std::unordered_map<int, NodeBitset> condition_cache_;
  // Resolved-test bitsets, keyed by (test kind, resolved name id).
  std::unordered_map<uint64_t, NodeBitset> test_cache_;
};

}  // namespace gkx::eval

#endif  // GKX_EVAL_CORE_LINEAR_EVALUATOR_HPP_
