// Request-tracing support: a monotonic-clock helper, per-request trace
// options, and a bounded in-memory slow-query log.
//
// Compile-out: building with -DGKX_OBS_DISABLED removes per-stage and
// per-route tracing from the request path (kCompiledOut becomes true and
// QueryService skips the stamps). The total-request-latency histogram stays
// on in all builds — it replaces the old latency recorder and the soak
// harness reconciles its count against the request counters.

#ifndef GKX_OBS_TRACE_HPP_
#define GKX_OBS_TRACE_HPP_

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gkx::obs {

#ifdef GKX_OBS_DISABLED
inline constexpr bool kCompiledOut = true;
#else
inline constexpr bool kCompiledOut = false;
#endif

/// Monotonic now in nanoseconds; the one clock all spans use.
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct TraceOptions {
  /// Master runtime switch for per-stage/per-route tracing and the
  /// slow-query log. Total request latency is always recorded.
  bool tracing = true;
  /// Requests slower than this land in the slow-query log.
  double slow_query_ms = 5.0;
  /// Ring capacity of the slow-query log (oldest entries evicted).
  size_t slow_query_capacity = 64;
};

/// One slow request, with enough context to re-run it: the canonical query
/// text, the document it ran against (and at which revision), the total
/// time, which routes executed, and the per-stage wall-clock breakdown.
struct SlowQuery {
  std::string doc_key;
  std::string query;  // canonical form
  uint64_t revision = 0;
  double total_ms = 0.0;
  std::vector<std::string> routes;  // execution routes, in segment order
  std::vector<std::pair<std::string, double>> stages_ms;  // (stage, ms)
};

/// Bounded ring of the most recent slow queries. Record() takes a mutex but
/// only fires for requests already past the threshold, so it is off the
/// common path. `recorded()` counts all threshold crossings, including
/// entries since evicted.
class SlowQueryLog {
 public:
  SlowQueryLog(double threshold_ms, size_t capacity)
      : threshold_ms_(threshold_ms), capacity_(capacity) {}

  /// Cheap pre-check callers use before building a SlowQuery.
  bool Eligible(double total_ms) const {
    return capacity_ > 0 && total_ms >= threshold_ms_;
  }

  void Record(SlowQuery entry);

  std::vector<SlowQuery> Snapshot() const;

  int64_t recorded() const {
    std::lock_guard<std::mutex> lock(mu_);
    return recorded_;
  }

  double threshold_ms() const { return threshold_ms_; }

 private:
  const double threshold_ms_;
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<SlowQuery> entries_;
  int64_t recorded_ = 0;
};

}  // namespace gkx::obs

#endif  // GKX_OBS_TRACE_HPP_
