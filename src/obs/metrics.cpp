#include "obs/metrics.hpp"

#include "base/check.hpp"

namespace gkx::obs {

Counter* MetricRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[std::string(name)];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricRegistry::GetHistogram(std::string_view name,
                                        Histogram::Unit unit) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[std::string(name)];
  if (!slot) {
    slot = std::make_unique<Histogram>(unit);
  } else {
    GKX_CHECK(slot->unit() == unit);
  }
  return slot.get();
}

void MetricRegistry::SetGauge(std::string_view name,
                              std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[std::string(name)] = std::move(fn);
}

std::vector<std::pair<std::string, int64_t>> MetricRegistry::CounterValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, double>> MetricRegistry::GaugeValues()
    const {
  std::vector<std::pair<std::string, std::function<double()>>> fns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fns.reserve(gauges_.size());
    for (const auto& [name, fn] : gauges_) fns.emplace_back(name, fn);
  }
  // Gauges run outside the registry lock: they may touch other subsystems.
  std::vector<std::pair<std::string, double>> out;
  out.reserve(fns.size());
  for (const auto& [name, fn] : fns) out.emplace_back(name, fn());
  return out;
}

std::vector<std::pair<std::string, HistogramSummary>>
MetricRegistry::HistogramSummaries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, HistogramSummary>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    out.emplace_back(name, hist->Summary());
  }
  return out;
}

void MetricRegistry::MergeInto(MetricRegistry* out) const {
  // Snapshot under our lock, apply under the target's (via the public
  // accessors) — never both at once, so two registries can merge into a
  // third concurrently and a registry can even merge into itself-shaped
  // graphs without lock-order cycles.
  std::vector<std::pair<std::string, int64_t>> counters = CounterValues();
  std::vector<std::pair<std::string, double>> gauges = GaugeValues();
  std::vector<std::pair<std::string, const Histogram*>> hists;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hists.reserve(histograms_.size());
    for (const auto& [name, hist] : histograms_) {
      hists.emplace_back(name, hist.get());
    }
  }
  for (const auto& [name, value] : counters) {
    out->GetCounter(name)->Add(value);
  }
  for (const auto& [name, value] : gauges) {
    // Accumulate the sampled value into a constant sum gauge: merging N
    // registries yields the sum of their gauge readings at merge time.
    double sum;
    {
      std::lock_guard<std::mutex> lock(out->mu_);
      sum = (out->merged_gauge_sums_[name] += value);
    }
    out->SetGauge(name, [sum]() { return sum; });
  }
  // Histogram pointers are stable for this registry's lifetime; Merge reads
  // the source buckets atomically, so concurrent recording is safe.
  for (const auto& [name, hist] : hists) {
    out->GetHistogram(name, hist->unit())->Merge(*hist);
  }
}

Histogram* HistogramFamily::Get(std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = members_.find(label);
  if (it == members_.end()) {
    it = members_.emplace(std::string(label), std::make_unique<Histogram>(unit_))
             .first;
  }
  return it->second.get();
}

std::map<std::string, HistogramSummary> HistogramFamily::Summaries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, HistogramSummary> out;
  for (const auto& [label, hist] : members_) out[label] = hist->Summary();
  return out;
}

void HistogramFamily::MergeInto(HistogramFamily* out) const {
  std::vector<std::pair<std::string, const Histogram*>> members;
  {
    std::lock_guard<std::mutex> lock(mu_);
    members.reserve(members_.size());
    for (const auto& [label, hist] : members_) {
      members.emplace_back(label, hist.get());
    }
  }
  for (const auto& [label, hist] : members) {
    out->Get(label)->Merge(*hist);
  }
}

}  // namespace gkx::obs
