// Minimal JSON document model for the stats exporter and its consumers
// (ExportStats emits it, obs_test and tools/check_stats_json parse it
// back). Supports exactly the JSON this repo produces: null, bool, finite
// numbers, strings with the common escapes, objects, arrays. Object keys
// are kept sorted (std::map), so Dump() is deterministic.

#ifndef GKX_OBS_JSON_HPP_
#define GKX_OBS_JSON_HPP_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/status.hpp"

namespace gkx::obs::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Value() = default;
  Value(bool b) : type_(Type::kBool), bool_(b) {}
  Value(double n) : type_(Type::kNumber), number_(n) {}
  Value(int64_t n) : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Value(int n) : type_(Type::kNumber), number_(n) {}
  Value(uint64_t n) : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Value(std::string_view s) : type_(Type::kString), string_(s) {}
  Value(const char* s) : type_(Type::kString), string_(s) {}

  static Value Object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }
  static Value Array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }

  double AsNumber() const { return number_; }
  bool AsBool() const { return bool_; }
  const std::string& AsString() const { return string_; }

  /// Object access; inserts a null member on a fresh key (object-typed
  /// values only — callers build objects with Object() first).
  Value& operator[](const std::string& key) { return members_[key]; }

  /// The member, or nullptr when absent or not an object.
  const Value* Find(const std::string& key) const {
    if (type_ != Type::kObject) return nullptr;
    auto it = members_.find(key);
    return it == members_.end() ? nullptr : &it->second;
  }

  /// Dotted-path lookup ("service.requests"), or nullptr.
  const Value* FindPath(std::string_view dotted) const;

  void Append(Value v) { items_.push_back(std::move(v)); }

  const std::map<std::string, Value>& members() const { return members_; }
  const std::vector<Value>& items() const { return items_; }

  /// Serializes; indent > 0 pretty-prints.
  std::string Dump(int indent = 0) const;

  /// Depth-first walk of numeric (and bool, as 0/1) leaves:
  /// `prefix_a_b value` with path components joined by '_' and sanitized to
  /// [a-z0-9_]. Strings and arrays are skipped — this is the Prometheus-ish
  /// flat text view of the same document.
  void FlattenNumbers(
      const std::string& prefix,
      std::vector<std::pair<std::string, double>>* out) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::map<std::string, Value> members_;
  std::vector<Value> items_;
};

/// Parses a JSON text (the subset Dump() produces, which is the subset the
/// exporters emit). Trailing garbage is an error.
Result<Value> Parse(std::string_view text);

/// Sanitizes one metric-name component: lowercase, [a-z0-9_] only.
std::string SanitizeComponent(std::string_view component);

}  // namespace gkx::obs::json

#endif  // GKX_OBS_JSON_HPP_
