#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gkx::obs {

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index == 0) return 1ull << kMinShift;
  if (index >= kBucketCount - 1) return std::numeric_limits<uint64_t>::max();
  const size_t octave = (index - 1) >> kSubBits;
  const size_t sub = (index - 1) & ((1u << kSubBits) - 1);
  // Bucket [ (8+sub) << (octave+3), (8+sub+1) << (octave+3) ).
  return static_cast<uint64_t>((1u << kSubBits) + sub + 1)
         << (octave + kMinShift - kSubBits);
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < kBucketCount; ++i) {
    const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  const uint64_t other_max = other.max_.load(std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (other_max > seen &&
         !max_.compare_exchange_weak(seen, other_max,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSummary Histogram::Summary() const {
  std::array<uint64_t, kBucketCount> snapshot;
  int64_t total = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    snapshot[i] = buckets_[i].load(std::memory_order_relaxed);
    total += static_cast<int64_t>(snapshot[i]);
  }
  HistogramSummary out;
  out.count = total;
  if (total == 0) return out;

  const uint64_t max_raw = max_.load(std::memory_order_relaxed);
  const double scale = unit_ == Unit::kNanos ? 1e-6 : 1.0;  // ns -> ms
  auto quantile = [&](double q) {
    int64_t rank = static_cast<int64_t>(
        std::ceil(q * static_cast<double>(total)));
    if (rank < 1) rank = 1;
    int64_t cumulative = 0;
    for (size_t i = 0; i < kBucketCount; ++i) {
      cumulative += static_cast<int64_t>(snapshot[i]);
      if (cumulative >= rank) {
        // Exact-by-bucket: the rank-th sample is somewhere in bucket i, so
        // its upper bound over-reports by at most the bucket width; the
        // exact max caps the top buckets.
        return static_cast<double>(std::min(BucketUpperBound(i), max_raw)) *
               scale;
      }
    }
    return static_cast<double>(max_raw) * scale;
  };
  out.p50 = quantile(0.50);
  out.p90 = quantile(0.90);
  out.p99 = quantile(0.99);
  out.p999 = quantile(0.999);
  out.max = static_cast<double>(max_raw) * scale;
  out.mean = static_cast<double>(sum_.load(std::memory_order_relaxed)) /
             static_cast<double>(total) * scale;
  return out;
}

}  // namespace gkx::obs
