#include "obs/trace.hpp"

namespace gkx::obs {

void SlowQueryLog::Record(SlowQuery entry) {
  if (!Eligible(entry.total_ms)) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_;
  entries_.push_back(std::move(entry));
  while (entries_.size() > capacity_) entries_.pop_front();
}

std::vector<SlowQuery> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SlowQuery>(entries_.begin(), entries_.end());
}

}  // namespace gkx::obs
