// Fixed-bucket, log-scaled histogram for hot-path measurement. Record() is
// lock-free (three relaxed atomic adds plus a CAS max) and safe from any
// thread, so it can replace mutex-guarded reservoirs on the request path.
//
// Bucketing: values are raw uint64s (nanoseconds for Unit::kNanos, plain
// counts for Unit::kCount). Bucket 0 holds everything below 64; above that,
// buckets are geometric with 8 sub-buckets per octave (12.5% relative
// width) across 30 octaves — for nanoseconds that spans 64ns to ~68s — plus
// one overflow bucket. Percentiles are *exact by bucket*: given the bucket
// counts, the reported quantile is deterministically the upper bound of the
// bucket holding the rank-th sample (clamped to the exact observed max), so
// the only error is the ≤12.5% bucket width — there is no sampling window
// and no recency bias, unlike the sorted-reservoir recorder this replaced
// (which silently reported a last-4096-samples percentile against an
// all-time count).
//
// Summaries are taken from a point-in-time snapshot of the buckets;
// concurrent Record()s may straddle the snapshot, so a summary's count is
// the number of samples fully visible at snapshot time. Merge() folds
// another histogram of the same unit in bucket-by-bucket.

#ifndef GKX_OBS_HISTOGRAM_HPP_
#define GKX_OBS_HISTOGRAM_HPP_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace gkx::obs {

/// Point-in-time percentile summary, in display units: milliseconds for
/// Unit::kNanos histograms, raw values for Unit::kCount.
struct HistogramSummary {
  int64_t count = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double max = 0.0;   // exact (tracked outside the buckets)
  double mean = 0.0;  // exact sum / count
};

class Histogram {
 public:
  enum class Unit {
    kNanos,  // time; Record(seconds) converts, summaries display milliseconds
    kCount,  // dimensionless counts; summaries display raw values
  };

  // 64 = 2^kMinShift is bucket 0's upper bound; 8 = 2^kSubBits sub-buckets
  // per octave; 30 octaves before the overflow bucket.
  static constexpr int kMinShift = 6;
  static constexpr int kSubBits = 3;
  static constexpr int kOctaves = 30;
  static constexpr size_t kBucketCount =
      2 + static_cast<size_t>(kOctaves) * (1u << kSubBits);

  explicit Histogram(Unit unit = Unit::kNanos) : unit_(unit) {}

  Unit unit() const { return unit_; }

  /// Lock-free; callable from any thread.
  void RecordValue(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Convenience for Unit::kNanos: records a wall-clock duration.
  void Record(double seconds) {
    RecordValue(seconds <= 0.0 ? 0
                               : static_cast<uint64_t>(seconds * 1e9 + 0.5));
  }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Folds `other` (same unit) into this histogram.
  void Merge(const Histogram& other);

  HistogramSummary Summary() const;

  /// The bucket a raw value lands in (exposed for the oracle tests).
  static size_t BucketIndex(uint64_t value) {
    if (value < (1ull << kMinShift)) return 0;
    const int msb = 63 - std::countl_zero(value);
    const int octave = msb - kMinShift;
    if (octave >= kOctaves) return kBucketCount - 1;
    const uint64_t sub =
        (value >> (msb - kSubBits)) & ((1u << kSubBits) - 1);
    return 1 + static_cast<size_t>(octave) * (1u << kSubBits) +
           static_cast<size_t>(sub);
  }

  /// Exclusive upper bound of a bucket in raw units (UINT64_MAX for the
  /// overflow bucket).
  static uint64_t BucketUpperBound(size_t index);

 private:
  Unit unit_;
  std::atomic<int64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kBucketCount> buckets_{};
};

}  // namespace gkx::obs

#endif  // GKX_OBS_HISTOGRAM_HPP_
