#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gkx::obs::json {
namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double n) {
  if (!std::isfinite(n)) {
    *out += "0";
    return;
  }
  // Integers print without a fraction; everything else with enough digits
  // to round-trip the values we export.
  if (n == std::floor(n) && std::fabs(n) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", n);
    *out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", n);
    *out += buf;
  }
}

void Indent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Run() {
    Value v;
    if (auto st = ParseValue(&v); !st.ok()) return st;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return InvalidArgumentError("json: trailing characters at offset " +
                                  std::to_string(pos_));
    }
    return v;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Fail(const std::string& what) {
    return InvalidArgumentError("json: " + what + " at offset " +
                                std::to_string(pos_));
  }

  Status ParseValue(Value* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      std::string s;
      if (auto st = ParseString(&s); !st.ok()) return st;
      *out = Value(std::move(s));
      return Status::Ok();
    }
    if (c == 't') return ParseLiteral("true", Value(true), out);
    if (c == 'f') return ParseLiteral("false", Value(false), out);
    if (c == 'n') return ParseLiteral("null", Value(), out);
    return ParseNumber(out);
  }

  Status ParseLiteral(std::string_view lit, Value v, Value* out) {
    if (text_.substr(pos_, lit.size()) != lit) return Fail("bad literal");
    pos_ += lit.size();
    *out = std::move(v);
    return Status::Ok();
  }

  Status ParseNumber(Value* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double n = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Fail("bad number");
    *out = Value(n);
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // We only emit \u for control characters; decode the ASCII range
          // and replace anything wider with '?'.
          out->push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseObject(Value* out) {
    if (!Consume('{')) return Fail("expected '{'");
    *out = Value::Object();
    if (Consume('}')) return Status::Ok();
    while (true) {
      std::string key;
      SkipWhitespace();
      if (auto st = ParseString(&key); !st.ok()) return st;
      if (!Consume(':')) return Fail("expected ':'");
      Value member;
      if (auto st = ParseValue(&member); !st.ok()) return st;
      (*out)[key] = std::move(member);
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(Value* out) {
    if (!Consume('[')) return Fail("expected '['");
    *out = Value::Array();
    if (Consume(']')) return Status::Ok();
    while (true) {
      Value item;
      if (auto st = ParseValue(&item); !st.ok()) return st;
      out->Append(std::move(item));
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Fail("expected ',' or ']'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const Value* Value::FindPath(std::string_view dotted) const {
  const Value* node = this;
  while (!dotted.empty()) {
    const size_t dot = dotted.find('.');
    const std::string key(dotted.substr(0, dot));
    node = node->Find(key);
    if (node == nullptr) return nullptr;
    if (dot == std::string_view::npos) break;
    dotted.remove_prefix(dot + 1);
  }
  return node;
}

void Value::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      AppendNumber(out, number_);
      return;
    case Type::kString:
      AppendEscaped(out, string_);
      return;
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) out->push_back(',');
        first = false;
        Indent(out, indent, depth + 1);
        AppendEscaped(out, key);
        *out += indent > 0 ? ": " : ":";
        value.DumpTo(out, indent, depth + 1);
      }
      Indent(out, indent, depth);
      out->push_back('}');
      return;
    }
    case Type::kArray: {
      if (items_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      bool first = true;
      for (const auto& item : items_) {
        if (!first) out->push_back(',');
        first = false;
        Indent(out, indent, depth + 1);
        item.DumpTo(out, indent, depth + 1);
      }
      Indent(out, indent, depth);
      out->push_back(']');
      return;
    }
  }
}

std::string Value::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

void Value::FlattenNumbers(
    const std::string& prefix,
    std::vector<std::pair<std::string, double>>* out) const {
  switch (type_) {
    case Type::kNumber:
      out->emplace_back(prefix, number_);
      return;
    case Type::kBool:
      out->emplace_back(prefix, bool_ ? 1.0 : 0.0);
      return;
    case Type::kObject:
      for (const auto& [key, value] : members_) {
        std::string child = prefix;
        if (!child.empty()) child.push_back('_');
        child += SanitizeComponent(key);
        value.FlattenNumbers(child, out);
      }
      return;
    default:
      return;  // strings/arrays/null have no flat numeric form
  }
}

std::string SanitizeComponent(std::string_view component) {
  std::string out;
  out.reserve(component.size());
  for (char c : component) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (std::isalnum(u)) {
      out.push_back(static_cast<char>(std::tolower(u)));
    } else {
      out.push_back('_');
    }
  }
  return out;
}

Result<Value> Parse(std::string_view text) { return Parser(text).Run(); }

}  // namespace gkx::obs::json
