// Named-metric registry: counters, gauges, and histograms addressable by
// string name. Registration (GetCounter/GetHistogram) takes a mutex but
// returns a stable pointer, so hot paths register once at construction and
// then touch only lock-free atomics. Dotted names ("update.splice_ms")
// group into nested objects in the JSON export.

#ifndef GKX_OBS_METRICS_HPP_
#define GKX_OBS_METRICS_HPP_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace gkx::obs {

/// Monotonic counter; Add is a relaxed atomic fetch_add.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class MetricRegistry {
 public:
  /// Returns the counter registered under `name`, creating it on first use.
  /// The pointer stays valid for the registry's lifetime.
  Counter* GetCounter(std::string_view name);

  /// Same for histograms. The unit is fixed at first registration;
  /// re-registering with a different unit is a programming error (checked).
  Histogram* GetHistogram(std::string_view name,
                          Histogram::Unit unit = Histogram::Unit::kNanos);

  /// Registers a pull gauge: `fn` is invoked at export time. Re-setting an
  /// existing name replaces the function.
  void SetGauge(std::string_view name, std::function<double()> fn);

  // Export accessors — sorted by name (std::map iteration order).
  std::vector<std::pair<std::string, int64_t>> CounterValues() const;
  std::vector<std::pair<std::string, double>> GaugeValues() const;
  std::vector<std::pair<std::string, HistogramSummary>> HistogramSummaries()
      const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<double()>> gauges_;
};

/// A set of histograms keyed by a dynamic label (e.g. route name). Get()
/// takes a mutex only on first sighting of a label; the returned pointer is
/// stable. Label cardinality is expected to be tiny (the four routes).
class HistogramFamily {
 public:
  explicit HistogramFamily(Histogram::Unit unit = Histogram::Unit::kNanos)
      : unit_(unit) {}

  Histogram* Get(std::string_view label);

  std::map<std::string, HistogramSummary> Summaries() const;

 private:
  Histogram::Unit unit_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> members_;
};

}  // namespace gkx::obs

#endif  // GKX_OBS_METRICS_HPP_
