// Named-metric registry: counters, gauges, and histograms addressable by
// string name. Registration (GetCounter/GetHistogram) takes a mutex but
// returns a stable pointer, so hot paths register once at construction and
// then touch only lock-free atomics. Dotted names ("update.splice_ms")
// group into nested objects in the JSON export.

#ifndef GKX_OBS_METRICS_HPP_
#define GKX_OBS_METRICS_HPP_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace gkx::obs {

/// Monotonic counter; Add is a relaxed atomic fetch_add.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class MetricRegistry {
 public:
  /// Returns the counter registered under `name`, creating it on first use.
  /// The pointer stays valid for the registry's lifetime.
  Counter* GetCounter(std::string_view name);

  /// Same for histograms. The unit is fixed at first registration;
  /// re-registering with a different unit is a programming error (checked).
  Histogram* GetHistogram(std::string_view name,
                          Histogram::Unit unit = Histogram::Unit::kNanos);

  /// Registers a pull gauge: `fn` is invoked at export time. Re-setting an
  /// existing name replaces the function.
  void SetGauge(std::string_view name, std::function<double()> fn);

  // Export accessors — sorted by name (std::map iteration order).
  std::vector<std::pair<std::string, int64_t>> CounterValues() const;
  std::vector<std::pair<std::string, double>> GaugeValues() const;
  std::vector<std::pair<std::string, HistogramSummary>> HistogramSummaries()
      const;

  /// Folds this registry into `out`: counters add into same-named counters,
  /// histograms merge bucket-exact (units must agree across registries —
  /// checked), and gauges are sampled now and added into a constant gauge in
  /// `out`. Percentiles of N merged registries are therefore exact, not
  /// summary-of-summaries approximations. Safe against concurrent recording
  /// on either side (the merged snapshot is per-bucket atomic, like
  /// Histogram::Merge).
  void MergeInto(MetricRegistry* out) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<double()>> gauges_;
  /// Running per-gauge sums accumulated by MergeInto (this registry as the
  /// merge *target*) so repeated merges from several sources add up.
  std::map<std::string, double> merged_gauge_sums_;
};

/// A set of histograms keyed by a dynamic label (e.g. route name). Get()
/// takes a mutex only on first sighting of a label; the returned pointer is
/// stable. Label cardinality is expected to be tiny (the four routes).
class HistogramFamily {
 public:
  explicit HistogramFamily(Histogram::Unit unit = Histogram::Unit::kNanos)
      : unit_(unit) {}

  Histogram* Get(std::string_view label);

  std::map<std::string, HistogramSummary> Summaries() const;

  /// Folds every member into the same-labelled member of `out` (created on
  /// demand with this family's unit), bucket-exact like Histogram::Merge.
  void MergeInto(HistogramFamily* out) const;

 private:
  Histogram::Unit unit_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> members_;
};

}  // namespace gkx::obs

#endif  // GKX_OBS_METRICS_HPP_
