#include "xpath/analysis.hpp"

#include <algorithm>

namespace gkx::xpath {
namespace {

ContextDependence MaxDep(ContextDependence a, ContextDependence b) {
  return static_cast<ContextDependence>(
      std::max(static_cast<int>(a), static_cast<int>(b)));
}

class Analyzer {
 public:
  explicit Analyzer(const Query& query) : query_(query) {
    analysis_.expr_traits.resize(static_cast<size_t>(query.num_exprs()));
  }

  QueryAnalysis Run() {
    Visit(query_.root());
    analysis_.size = query_.size();
    return std::move(analysis_);
  }

 private:
  // Returns the traits of `expr`, filling analysis_ along the way.
  // `arith_depth` bookkeeping: depth of the arithmetic-operator chain ending
  // at this node (counted downward from the nearest non-arithmetic ancestor).
  ExprTraits Visit(const Expr& expr) {
    ExprTraits traits;
    traits.type = StaticType(expr);

    switch (expr.kind()) {
      case Expr::Kind::kNumberLiteral:
        analysis_.has_number_literal = true;
        break;
      case Expr::Kind::kStringLiteral:
        analysis_.has_string_literal = true;
        break;
      case Expr::Kind::kNegate: {
        analysis_.has_arithmetic = true;
        ExprTraits operand = Visit(expr.As<NegateExpr>().operand());
        traits = Merge(traits, operand);
        RecordArithDepth(expr);
        break;
      }
      case Expr::Kind::kBinary: {
        const auto& binary = expr.As<BinaryExpr>();
        ExprTraits lhs = Visit(binary.lhs());
        ExprTraits rhs = Visit(binary.rhs());
        traits = Merge(Merge(traits, lhs), rhs);
        if (IsArithmeticOp(binary.op())) {
          analysis_.has_arithmetic = true;
          RecordArithDepth(expr);
        } else if (IsRelationalOp(binary.op())) {
          analysis_.has_relop = true;
          const ValueType lt = StaticType(binary.lhs());
          const ValueType rt = StaticType(binary.rhs());
          if (lt == ValueType::kBoolean || rt == ValueType::kBoolean) {
            analysis_.relop_with_boolean_operand = true;
          }
          if (lt != ValueType::kNumber || rt != ValueType::kNumber) {
            analysis_.relop_with_nonnumber_operand = true;
          }
        }
        break;
      }
      case Expr::Kind::kFunctionCall: {
        const auto& call = expr.As<FunctionCall>();
        analysis_.functions_used.insert(call.function());
        for (size_t i = 0; i < call.arg_count(); ++i) {
          traits = Merge(traits, Visit(call.arg(i)));
        }
        switch (call.function()) {
          case Function::kPosition:
            traits.uses_position = true;
            traits.dependence = ContextDependence::kFull;
            analysis_.has_position_or_last = true;
            break;
          case Function::kLast:
            traits.uses_last = true;
            traits.dependence = ContextDependence::kFull;
            analysis_.has_position_or_last = true;
            break;
          case Function::kTrue:
          case Function::kFalse:
            break;
          case Function::kNot:
            analysis_.has_negation = true;
            break;
          case Function::kConcat:
            analysis_.max_concat_arity = std::max(
                analysis_.max_concat_arity, static_cast<int>(call.arg_count()));
            RecordConcatDepth(expr);
            break;
          case Function::kString:
          case Function::kNumber:
          case Function::kStringLength:
          case Function::kNormalizeSpace:
          case Function::kName:
          case Function::kLocalName:
            // Zero-argument forms read the context node.
            if (call.arg_count() == 0) {
              traits.dependence =
                  MaxDep(traits.dependence, ContextDependence::kNode);
            }
            break;
          default:
            break;
        }
        break;
      }
      case Expr::Kind::kPath: {
        const auto& path = expr.As<PathExpr>();
        traits.dependence = path.absolute() ? ContextDependence::kNone
                                            : ContextDependence::kNode;
        for (size_t i = 0; i < path.step_count(); ++i) {
          const Step& step = path.step(i);
          analysis_.axes_used[static_cast<size_t>(step.axis)] = true;
          analysis_.max_predicates_per_step =
              std::max(analysis_.max_predicates_per_step,
                       static_cast<int>(step.predicates.size()));
          if (!step.predicates.empty()) analysis_.has_predicates = true;
          for (const ExprPtr& predicate : step.predicates) {
            // Steps rebind the context: position()/last() inside a predicate
            // do not leak out, and the predicate sees the step's own nodes.
            Visit(*predicate);
          }
        }
        break;
      }
      case Expr::Kind::kUnion: {
        analysis_.has_union = true;
        const auto& u = expr.As<UnionExpr>();
        for (size_t i = 0; i < u.branch_count(); ++i) {
          traits = Merge(traits, Visit(u.branch(i)));
        }
        break;
      }
    }

    analysis_.expr_traits[static_cast<size_t>(expr.id())] = traits;
    return traits;
  }

  // Joins child context info into the parent's traits (type stays the
  // parent's own).
  static ExprTraits Merge(ExprTraits parent, const ExprTraits& child) {
    parent.dependence = MaxDep(parent.dependence, child.dependence);
    parent.uses_position |= child.uses_position;
    parent.uses_last |= child.uses_last;
    return parent;
  }

  void RecordArithDepth(const Expr& expr) {
    analysis_.max_arith_depth =
        std::max(analysis_.max_arith_depth, ArithDepth(expr));
  }

  // Depth of the arithmetic chain rooted at `expr` (1 for a lone operator).
  int ArithDepth(const Expr& expr) {
    switch (expr.kind()) {
      case Expr::Kind::kNegate:
        return 1 + ArithDepth(expr.As<NegateExpr>().operand());
      case Expr::Kind::kBinary: {
        const auto& binary = expr.As<BinaryExpr>();
        if (!IsArithmeticOp(binary.op())) return 0;
        return 1 + std::max(ArithDepth(binary.lhs()), ArithDepth(binary.rhs()));
      }
      default:
        return 0;
    }
  }

  void RecordConcatDepth(const Expr& expr) {
    analysis_.max_concat_depth =
        std::max(analysis_.max_concat_depth, ConcatDepth(expr));
  }

  int ConcatDepth(const Expr& expr) {
    if (expr.kind() != Expr::Kind::kFunctionCall) return 0;
    const auto& call = expr.As<FunctionCall>();
    if (call.function() != Function::kConcat) return 0;
    int max_child = 0;
    for (size_t i = 0; i < call.arg_count(); ++i) {
      max_child = std::max(max_child, ConcatDepth(call.arg(i)));
    }
    return 1 + max_child;
  }

  const Query& query_;
  QueryAnalysis analysis_;
};

/// Computes not() nesting depth over the whole tree (crossing any construct,
/// per Theorem 5.9's "maximum depth of nested occurrences").
int NotDepth(const Expr& expr) {
  int self = 0;
  int children = 0;
  switch (expr.kind()) {
    case Expr::Kind::kNumberLiteral:
    case Expr::Kind::kStringLiteral:
      return 0;
    case Expr::Kind::kNegate:
      return NotDepth(expr.As<NegateExpr>().operand());
    case Expr::Kind::kBinary: {
      const auto& binary = expr.As<BinaryExpr>();
      return std::max(NotDepth(binary.lhs()), NotDepth(binary.rhs()));
    }
    case Expr::Kind::kFunctionCall: {
      const auto& call = expr.As<FunctionCall>();
      for (size_t i = 0; i < call.arg_count(); ++i) {
        children = std::max(children, NotDepth(call.arg(i)));
      }
      if (call.function() == Function::kNot) self = 1;
      return self + children;
    }
    case Expr::Kind::kPath: {
      const auto& path = expr.As<PathExpr>();
      for (size_t i = 0; i < path.step_count(); ++i) {
        for (const ExprPtr& predicate : path.step(i).predicates) {
          children = std::max(children, NotDepth(*predicate));
        }
      }
      return children;
    }
    case Expr::Kind::kUnion: {
      const auto& u = expr.As<UnionExpr>();
      for (size_t i = 0; i < u.branch_count(); ++i) {
        children = std::max(children, NotDepth(u.branch(i)));
      }
      return children;
    }
  }
  return 0;
}

}  // namespace

QueryAnalysis Analyze(const Query& query) {
  Analyzer analyzer(query);
  QueryAnalysis analysis = analyzer.Run();
  analysis.max_not_depth = NotDepth(query.root());
  return analysis;
}

}  // namespace gkx::xpath
