#include "xpath/optimize.hpp"

#include <utility>
#include <vector>

#include "xpath/analysis.hpp"
#include "xpath/build.hpp"

namespace gkx::xpath {
namespace {

/// Matches a node test that accepts every element (node() — and '*', which
/// is equivalent in an element-only data model).
bool MatchesEverything(const NodeTest& test) {
  return test.kind == NodeTest::Kind::kNode || test.kind == NodeTest::Kind::kAny;
}

/// True if dropping/merging would be observable through this predicate:
/// positional predicates count against the candidate list, which fusion
/// changes ( //para[1] is NOT /descendant::para[1] ).
bool PredicateIsPositional(const QueryAnalysis& analysis, const Expr& predicate) {
  const ExprTraits& traits = analysis.traits(predicate);
  return traits.uses_position || traits.uses_last ||
         StaticType(predicate) == ValueType::kNumber;
}

bool StepHasPositionalPredicate(const QueryAnalysis& analysis, const Step& step) {
  for (const ExprPtr& predicate : step.predicates) {
    if (PredicateIsPositional(analysis, *predicate)) return true;
  }
  return false;
}

/// [true()], [position() >= 1], [position() <= last()] are tautologies that
/// also keep the re-ranking identity, so they can be dropped.
bool PredicateIsTrivialTrue(const Expr& predicate) {
  if (predicate.kind() == Expr::Kind::kFunctionCall) {
    return predicate.As<FunctionCall>().function() == Function::kTrue;
  }
  if (predicate.kind() != Expr::Kind::kBinary) return false;
  const auto& binary = predicate.As<BinaryExpr>();
  auto is_position = [](const Expr& e) {
    return e.kind() == Expr::Kind::kFunctionCall &&
           e.As<FunctionCall>().function() == Function::kPosition;
  };
  auto is_last = [](const Expr& e) {
    return e.kind() == Expr::Kind::kFunctionCall &&
           e.As<FunctionCall>().function() == Function::kLast;
  };
  auto is_one = [](const Expr& e) {
    return e.kind() == Expr::Kind::kNumberLiteral &&
           e.As<NumberLiteral>().value() == 1.0;
  };
  if (binary.op() == BinaryOp::kGe && is_position(binary.lhs()) &&
      is_one(binary.rhs())) {
    return true;  // position() >= 1
  }
  if (binary.op() == BinaryOp::kLe && is_position(binary.lhs()) &&
      is_last(binary.rhs())) {
    return true;  // position() <= last()
  }
  return false;
}

class Optimizer {
 public:
  Optimizer(const QueryAnalysis& analysis, OptimizeStats* stats)
      : analysis_(analysis), stats_(stats) {}

  ExprPtr Rewrite(const Expr& expr) {
    switch (expr.kind()) {
      case Expr::Kind::kNumberLiteral:
      case Expr::Kind::kStringLiteral:
        return build::CloneExpr(expr);
      case Expr::Kind::kBinary: {
        const auto& binary = expr.As<BinaryExpr>();
        return build::Binary(binary.op(), Rewrite(binary.lhs()),
                             Rewrite(binary.rhs()));
      }
      case Expr::Kind::kNegate:
        return build::Negate(Rewrite(expr.As<NegateExpr>().operand()));
      case Expr::Kind::kFunctionCall: {
        const auto& call = expr.As<FunctionCall>();
        std::vector<ExprPtr> args;
        args.reserve(call.arg_count());
        for (size_t i = 0; i < call.arg_count(); ++i) {
          args.push_back(Rewrite(call.arg(i)));
        }
        return build::Call(call.function(), std::move(args));
      }
      case Expr::Kind::kPath:
        return RewritePath(expr.As<PathExpr>());
      case Expr::Kind::kUnion: {
        const auto& u = expr.As<UnionExpr>();
        std::vector<ExprPtr> branches;
        for (size_t i = 0; i < u.branch_count(); ++i) {
          ExprPtr branch = Rewrite(u.branch(i));
          if (branch->kind() == Expr::Kind::kUnion) {
            // Splice nested unions (associativity).
            auto* nested = static_cast<UnionExpr*>(branch.get());
            for (size_t j = 0; j < nested->branch_count(); ++j) {
              branches.push_back(build::CloneExpr(nested->branch(j)));
            }
            if (stats_ != nullptr) ++stats_->unwrapped_unions;
          } else {
            branches.push_back(std::move(branch));
          }
        }
        GKX_CHECK_GE(branches.size(), 2u);
        return build::Union(std::move(branches));
      }
    }
    GKX_CHECK(false);
    return nullptr;
  }

 private:
  Step RewriteStep(const Step& step) {
    std::vector<ExprPtr> predicates;
    for (const ExprPtr& predicate : step.predicates) {
      if (PredicateIsTrivialTrue(*predicate)) {
        if (stats_ != nullptr) ++stats_->dropped_predicates;
        continue;
      }
      predicates.push_back(Rewrite(*predicate));
    }
    return build::MakeStep(step.axis, step.test, std::move(predicates));
  }

  ExprPtr RewritePath(const PathExpr& path) {
    // First pass: rewrite steps (predicates simplified).
    std::vector<Step> steps;
    std::vector<const Step*> originals;  // for positional checks
    steps.reserve(path.step_count());
    for (size_t i = 0; i < path.step_count(); ++i) {
      steps.push_back(RewriteStep(path.step(i)));
      originals.push_back(&path.step(i));
    }

    // Second pass: fuse / drop, left to right.
    std::vector<Step> fused;
    std::vector<const Step*> fused_originals;
    for (size_t i = 0; i < steps.size(); ++i) {
      Step& step = steps[i];
      const Step* original = originals[i];
      // descendant-or-self::node() (no predicates) + following child/
      // descendant step without positional predicates fuses to descendant.
      if (step.axis == Axis::kDescendantOrSelf && MatchesEverything(step.test) &&
          step.predicates.empty() && i + 1 < steps.size()) {
        Step& next = steps[i + 1];
        const bool fusable_axis =
            next.axis == Axis::kChild || next.axis == Axis::kDescendant;
        if (fusable_axis &&
            !StepHasPositionalPredicate(analysis_, *originals[i + 1])) {
          next.axis = Axis::kDescendant;
          if (stats_ != nullptr) ++stats_->fused_steps;
          continue;  // drop the d-o-s step; `next` handled next iteration
        }
      }
      // self::node() with no predicates is the identity step.
      if (step.axis == Axis::kSelf && MatchesEverything(step.test) &&
          step.predicates.empty()) {
        const bool other_steps_exist =
            !fused.empty() || i + 1 < steps.size() || path.absolute();
        if (other_steps_exist) {
          if (stats_ != nullptr) ++stats_->dropped_self_steps;
          continue;
        }
      }
      fused.push_back(std::move(step));
      fused_originals.push_back(original);
    }
    if (fused.empty() && !path.absolute()) {
      fused.push_back(build::MakeStep(Axis::kSelf, NodeTest::AllNodes()));
    }
    return build::Path(path.absolute(), std::move(fused));
  }

  const QueryAnalysis& analysis_;
  OptimizeStats* stats_;
};

}  // namespace

Query Optimize(const Query& query, OptimizeStats* stats) {
  QueryAnalysis analysis = Analyze(query);
  Optimizer optimizer(analysis, stats);
  return Query::Create(optimizer.Rewrite(query.root()));
}

}  // namespace gkx::xpath
