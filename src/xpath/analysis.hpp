// Static analysis over a Query: per-expression context dependence (what the
// context-value-table evaluator keys its tables on) and the global syntactic
// measures that the fragment definitions of the paper regulate (Defs 2.5,
// 2.6, 5.1, 6.1).

#ifndef GKX_XPATH_ANALYSIS_HPP_
#define GKX_XPATH_ANALYSIS_HPP_

#include <array>
#include <set>
#include <vector>

#include "xpath/ast.hpp"

namespace gkx::xpath {

/// What part of the evaluation context ⟨node, position, size⟩ an
/// expression's value depends on.
enum class ContextDependence {
  kNone,  // constant (literals, absolute paths, true(), ...)
  kNode,  // depends on the context node only (all relative paths, ...)
  kFull,  // uses position() and/or last() free of any step rebinding
};

/// Per-expression traits, indexed by Expr::id().
struct ExprTraits {
  ContextDependence dependence = ContextDependence::kNone;
  ValueType type = ValueType::kBoolean;
  bool uses_position = false;  // free position() occurrence
  bool uses_last = false;      // free last() occurrence
};

/// Whole-query syntactic measures.
struct QueryAnalysis {
  std::vector<ExprTraits> expr_traits;

  int size = 0;                     // |Q| = expr nodes + steps
  int max_predicates_per_step = 0;  // k of the longest χ::t[e1]...[ek]
  int max_not_depth = 0;            // nesting depth of not()
  int max_arith_depth = 0;          // nesting of arithmetic ops / unary minus
  int max_concat_depth = 0;
  int max_concat_arity = 0;

  std::array<bool, kNumAxes> axes_used = {};
  std::set<Function> functions_used;

  bool has_predicates = false;
  bool has_negation = false;         // any not()
  bool has_union = false;
  bool has_string_literal = false;
  bool has_number_literal = false;
  bool has_arithmetic = false;
  bool has_relop = false;
  bool relop_with_boolean_operand = false;     // pXPath restriction 3
  bool relop_with_nonnumber_operand = false;   // WF requires nexpr RelOp nexpr
  bool has_position_or_last = false;

  const ExprTraits& traits(const Expr& expr) const {
    GKX_CHECK(expr.id() >= 0 &&
              expr.id() < static_cast<int>(expr_traits.size()));
    return expr_traits[static_cast<size_t>(expr.id())];
  }
};

/// Analyzes a query (linear in |Q|).
QueryAnalysis Analyze(const Query& query);

}  // namespace gkx::xpath

#endif  // GKX_XPATH_ANALYSIS_HPP_
