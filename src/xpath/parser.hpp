// Recursive-descent parser for the XPath subset described in ast.hpp.
// Abbreviations are expanded at parse time:
//   //   ->  /descendant-or-self::node()/
//   name ->  child::name          .  -> self::node()    .. -> parent::node()
// Variables ($x), attribute (@/attribute::) and namespace axes are rejected
// with targeted error messages (they fall outside every fragment the paper
// analyses).

#ifndef GKX_XPATH_PARSER_HPP_
#define GKX_XPATH_PARSER_HPP_

#include <string_view>

#include "base/status.hpp"
#include "xpath/ast.hpp"

namespace gkx::xpath {

/// Parses a complete XPath expression into a Query.
Result<Query> ParseQuery(std::string_view text);

/// Parses and aborts on error — for tests and inline query constants.
Query MustParse(std::string_view text);

}  // namespace gkx::xpath

#endif  // GKX_XPATH_PARSER_HPP_
