#include "xpath/generator.hpp"

#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "xpath/build.hpp"

namespace gkx::xpath {
namespace {

using build::AnyStep;
using build::MakeStep;
using build::NamedStep;

constexpr Axis kAllAxes[] = {
    Axis::kSelf,          Axis::kChild,
    Axis::kParent,        Axis::kDescendant,
    Axis::kDescendantOrSelf, Axis::kAncestor,
    Axis::kAncestorOrSelf, Axis::kFollowing,
    Axis::kFollowingSibling, Axis::kPreceding,
    Axis::kPrecedingSibling,
};

class Generator {
 public:
  Generator(Rng* rng, const RandomQueryOptions& options)
      : rng_(*rng), options_(options) {
    axes_ = options.axes;
    if (axes_.empty()) {
      axes_.assign(std::begin(kAllAxes), std::end(kAllAxes));
    }
    if (options.tag_zipf_s > 0.0) {
      tag_zipf_.emplace(options.tag_alphabet, options.tag_zipf_s);
    }
  }

  Query Run() {
    ExprPtr root;
    if (rng_.Bernoulli(options_.union_probability)) {
      std::vector<ExprPtr> branches;
      int64_t count = rng_.UniformInt(2, 3);
      for (int64_t i = 0; i < count; ++i) {
        branches.push_back(GenPath(options_.max_condition_depth));
      }
      root = build::Union(std::move(branches));
    } else {
      root = GenPath(options_.max_condition_depth);
    }
    return Query::Create(std::move(root));
  }

 private:
  bool FragmentHasConditions() const {
    return options_.fragment != Fragment::kPF;
  }
  bool FragmentHasNegation() const {
    return options_.fragment == Fragment::kCore ||
           options_.fragment == Fragment::kWF ||
           options_.fragment == Fragment::kFullXPath;
  }
  bool FragmentHasArithmetic() const {
    return options_.fragment == Fragment::kPWF ||
           options_.fragment == Fragment::kWF ||
           options_.fragment == Fragment::kPXPath ||
           options_.fragment == Fragment::kFullXPath;
  }
  int MaxPredicatesPerStep() const {
    // Iterated predicates are only inside Core XPath / WF / full XPath.
    switch (options_.fragment) {
      case Fragment::kPF:
        return 0;
      case Fragment::kPWF:
      case Fragment::kPXPath:
        return 1;
      default:
        return options_.max_predicates_per_step;
    }
  }

  NodeTest GenTest() {
    if (rng_.Bernoulli(options_.any_test_probability)) return NodeTest::Any();
    const int64_t tag = tag_zipf_
                            ? tag_zipf_->Sample(&rng_)
                            : rng_.UniformInt(0, options_.tag_alphabet - 1);
    return NodeTest::Name("t" + std::to_string(tag));
  }

  Step GenStep(int depth) {
    Axis axis = rng_.Pick(axes_);
    std::vector<ExprPtr> predicates;
    if (FragmentHasConditions() && depth > 0) {
      const int max_preds = MaxPredicatesPerStep();
      for (int i = 0; i < max_preds; ++i) {
        if (!rng_.Bernoulli(options_.predicate_probability)) break;
        predicates.push_back(GenCondition(depth - 1));
      }
    }
    return MakeStep(axis, GenTest(), std::move(predicates));
  }

  ExprPtr GenPath(int depth) {
    bool absolute = rng_.Bernoulli(options_.absolute_probability);
    int64_t num_steps = rng_.UniformInt(1, options_.max_path_steps);
    std::vector<Step> steps;
    steps.reserve(static_cast<size_t>(num_steps));
    for (int64_t i = 0; i < num_steps; ++i) steps.push_back(GenStep(depth));
    return build::Path(absolute, std::move(steps));
  }

  ExprPtr GenCondition(int depth) {
    // Choice weights: plain path conditions dominate, mirroring practice.
    if (depth > 0 && rng_.Bernoulli(0.35)) {
      ExprPtr lhs = GenCondition(depth - 1);
      ExprPtr rhs = GenCondition(depth - 1);
      return rng_.Bernoulli(0.5) ? build::And(std::move(lhs), std::move(rhs))
                                 : build::Or(std::move(lhs), std::move(rhs));
    }
    if (FragmentHasNegation() && depth > 0 && rng_.Bernoulli(0.3)) {
      return build::Not(GenCondition(depth - 1));
    }
    if (FragmentHasArithmetic() && rng_.Bernoulli(options_.relop_probability)) {
      return GenRelop(depth);
    }
    if (options_.fragment == Fragment::kPXPath && rng_.Bernoulli(0.15)) {
      std::vector<ExprPtr> args;
      args.push_back(GenPath(depth));
      return build::Call(Function::kBoolean, std::move(args));
    }
    if (options_.fragment == Fragment::kFullXPath && rng_.Bernoulli(0.2)) {
      return GenFullXPathCondition(depth);
    }
    return GenPath(depth);
  }

  ExprPtr GenRelop(int depth) {
    static constexpr BinaryOp kRelops[] = {BinaryOp::kEq, BinaryOp::kNe,
                                           BinaryOp::kLt, BinaryOp::kLe,
                                           BinaryOp::kGt, BinaryOp::kGe};
    BinaryOp op = kRelops[rng_.UniformInt(0, 5)];
    return build::Binary(op, GenNexpr(options_.max_arith_depth, depth),
                         GenNexpr(options_.max_arith_depth, depth));
  }

  ExprPtr GenNexpr(int arith_depth, int cond_depth) {
    if (arith_depth > 0 && rng_.Bernoulli(0.35)) {
      static constexpr BinaryOp kArith[] = {BinaryOp::kAdd, BinaryOp::kSub,
                                            BinaryOp::kMul, BinaryOp::kMod};
      BinaryOp op = kArith[rng_.UniformInt(0, 3)];
      return build::Binary(op, GenNexpr(arith_depth - 1, cond_depth),
                           GenNexpr(arith_depth - 1, cond_depth));
    }
    if (options_.fragment == Fragment::kFullXPath && rng_.Bernoulli(0.2)) {
      std::vector<ExprPtr> args;
      args.push_back(GenPath(cond_depth));
      return build::Call(Function::kCount, std::move(args));
    }
    switch (rng_.UniformInt(0, 2)) {
      case 0:
        return build::Position();
      case 1:
        return build::Last();
      default:
        return build::Number(static_cast<double>(rng_.UniformInt(0, 4)));
    }
  }

  ExprPtr GenFullXPathCondition(int depth) {
    switch (rng_.UniformInt(0, 2)) {
      case 0: {  // count(π) relop number
        std::vector<ExprPtr> args;
        args.push_back(GenPath(depth));
        return build::Binary(
            rng_.Bernoulli(0.5) ? BinaryOp::kGe : BinaryOp::kEq,
            build::Call(Function::kCount, std::move(args)),
            build::Number(static_cast<double>(rng_.UniformInt(0, 3))));
      }
      case 1: {  // string-valued comparison
        std::vector<ExprPtr> args;
        args.push_back(GenPath(depth));
        return build::Eq(build::Call(Function::kString, std::move(args)),
                         build::Str(std::to_string(rng_.UniformInt(0, 99))));
      }
      default: {  // starts-with(name(), 't')
        std::vector<ExprPtr> args;
        args.push_back(build::Call(Function::kName));
        args.push_back(build::Str("t"));
        return build::Call(Function::kStartsWith, std::move(args));
      }
    }
  }

  Rng& rng_;
  const RandomQueryOptions& options_;
  std::vector<Axis> axes_;
  std::optional<ZipfSampler> tag_zipf_;
};

}  // namespace

Query RandomQuery(Rng* rng, const RandomQueryOptions& options) {
  Generator generator(rng, options);
  return generator.Run();
}

Query NestedConditionQuery(int depth, int arms) {
  GKX_CHECK_GE(depth, 0);
  GKX_CHECK_GE(arms, 1);
  // Build bottom-up: condition of level k wraps `arms` copies of level k-1.
  std::function<ExprPtr(int)> condition = [&](int level) -> ExprPtr {
    if (level == 0) {
      return build::StepPath(NamedStep(Axis::kDescendant, "t0"));
    }
    ExprPtr conjunction;
    for (int i = 0; i < arms; ++i) {
      std::vector<ExprPtr> preds;
      preds.push_back(condition(level - 1));
      ExprPtr arm = build::StepPath(
          NamedStep(Axis::kDescendant, "t0", std::move(preds)));
      conjunction = conjunction == nullptr
                        ? std::move(arm)
                        : build::And(std::move(conjunction), std::move(arm));
    }
    return conjunction;
  };
  std::vector<ExprPtr> preds;
  preds.push_back(condition(depth));
  std::vector<Step> steps;
  steps.push_back(
      MakeStep(Axis::kDescendantOrSelf, NodeTest::Any(), std::move(preds)));
  return Query::Create(build::Path(/*absolute=*/true, std::move(steps)));
}

Query ChildStarChainQuery(int steps) {
  GKX_CHECK_GE(steps, 1);
  std::vector<Step> chain;
  chain.reserve(static_cast<size_t>(steps));
  for (int i = 0; i < steps; ++i) chain.push_back(AnyStep(Axis::kChild));
  return Query::Create(build::Path(/*absolute=*/true, std::move(chain)));
}

}  // namespace gkx::xpath
