// Random query generation per fragment — the workload side of the
// differential property tests (all evaluators must agree on random
// query/document pairs) and of the experiment sweeps.

#ifndef GKX_XPATH_GENERATOR_HPP_
#define GKX_XPATH_GENERATOR_HPP_

#include <vector>

#include "base/rng.hpp"
#include "xpath/ast.hpp"
#include "xpath/fragment.hpp"

namespace gkx::xpath {

struct RandomQueryOptions {
  /// Target fragment; the generated query is syntactically inside it.
  Fragment fragment = Fragment::kCore;
  /// Steps per generated path (1..max).
  int max_path_steps = 3;
  /// Nesting depth of conditions inside conditions.
  int max_condition_depth = 2;
  /// Predicates per step (only Fragment::kCore and kFullXPath may exceed 1).
  int max_predicates_per_step = 1;
  /// Node-test names are drawn from {t0, ..., t<alphabet-1>} — matching
  /// xml::RandomDocument's tags.
  int tag_alphabet = 4;
  /// Zipf skew for tag popularity in node tests: 0 = uniform (byte-identical
  /// to the historical generator); s > 0 favours t0 with P(t_k) ∝ 1/(k+1)^s,
  /// mirroring xml::RandomDocumentOptions::tag_zipf_s so skewed queries hit
  /// skewed documents.
  double tag_zipf_s = 0.0;
  double any_test_probability = 0.3;
  double absolute_probability = 0.3;
  double union_probability = 0.15;
  double predicate_probability = 0.6;
  /// For arithmetic-capable fragments: probability that a condition is a
  /// positional comparison, and the arithmetic nesting cap.
  double relop_probability = 0.4;
  int max_arith_depth = 2;
  /// Axes to draw from; empty = all 11.
  std::vector<Axis> axes;
};

/// Generates a random query inside the requested fragment.
Query RandomQuery(Rng* rng, const RandomQueryOptions& options = {});

/// The family of nested-descendant queries used by the "engines are
/// exponential in |Q|" intro experiment:
///   depth 0: descendant::t0
///   depth k: descendant::t0[<query of depth k-1>] with branching `arms`.
/// Positive Core XPath; |Q| = Θ(arms^depth) for arms >= 2, Θ(depth) for 1.
Query NestedConditionQuery(int depth, int arms = 2);

/// A chain of `steps` child::* steps (PF) — workload for the linear-scaling
/// experiments.
Query ChildStarChainQuery(int steps);

}  // namespace gkx::xpath

#endif  // GKX_XPATH_GENERATOR_HPP_
