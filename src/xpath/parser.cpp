#include "xpath/parser.hpp"

#include <cstdio>
#include <utility>
#include <vector>

#include "xpath/build.hpp"
#include "xpath/lexer.hpp"

namespace gkx::xpath {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Run() {
    ExprPtr expr;
    GKX_ASSIGN_OR_RETURN(expr, ParseExpr());
    if (Peek().kind != TokenKind::kEof) {
      return Error("unexpected " + std::string(TokenKindName(Peek().kind)) +
                   " after complete expression")
          .status();
    }
    return Query::Create(std::move(expr));
  }

 private:
  const Token& Peek(size_t lookahead = 0) const {
    size_t i = pos_ + lookahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;  // kEof
    return tokens_[i];
  }

  const Token& Take() {
    const Token& token = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return token;
  }

  bool Match(TokenKind kind) {
    if (Peek().kind != kind) return false;
    Take();
    return true;
  }

  Status Expect(TokenKind kind, std::string_view context) {
    if (Match(kind)) return Status::Ok();
    return Error(std::string("expected ") + std::string(TokenKindName(kind)) +
                 " " + std::string(context) + ", found " +
                 std::string(TokenKindName(Peek().kind)))
        .status();
  }

  Result<ExprPtr> Error(std::string message) const {
    return InvalidArgumentError("XPath parse error at offset " +
                                std::to_string(Peek().offset) + ": " +
                                std::move(message));
  }

  // Expr := OrExpr
  Result<ExprPtr> ParseExpr() { return ParseBinary(0); }

  // Precedence-climbing over the binary operator levels.
  // level: 0=or 1=and 2=equality 3=relational 4=additive 5=multiplicative
  Result<ExprPtr> ParseBinary(int level) {
    if (level == 6) return ParseUnary();
    ExprPtr lhs;
    GKX_ASSIGN_OR_RETURN(lhs, ParseBinary(level + 1));
    while (true) {
      BinaryOp op;
      if (!MatchOperator(level, &op)) return lhs;
      ExprPtr rhs;
      GKX_ASSIGN_OR_RETURN(rhs, ParseBinary(level + 1));
      lhs = build::Binary(op, std::move(lhs), std::move(rhs));
    }
  }

  bool MatchOperator(int level, BinaryOp* op) {
    const TokenKind kind = Peek().kind;
    switch (level) {
      case 0:
        if (kind == TokenKind::kOr) { *op = BinaryOp::kOr; break; }
        return false;
      case 1:
        if (kind == TokenKind::kAnd) { *op = BinaryOp::kAnd; break; }
        return false;
      case 2:
        if (kind == TokenKind::kEq) { *op = BinaryOp::kEq; break; }
        if (kind == TokenKind::kNe) { *op = BinaryOp::kNe; break; }
        return false;
      case 3:
        if (kind == TokenKind::kLt) { *op = BinaryOp::kLt; break; }
        if (kind == TokenKind::kLe) { *op = BinaryOp::kLe; break; }
        if (kind == TokenKind::kGt) { *op = BinaryOp::kGt; break; }
        if (kind == TokenKind::kGe) { *op = BinaryOp::kGe; break; }
        return false;
      case 4:
        if (kind == TokenKind::kPlus) { *op = BinaryOp::kAdd; break; }
        if (kind == TokenKind::kMinus) { *op = BinaryOp::kSub; break; }
        return false;
      case 5:
        if (kind == TokenKind::kMul) { *op = BinaryOp::kMul; break; }
        if (kind == TokenKind::kDiv) { *op = BinaryOp::kDiv; break; }
        if (kind == TokenKind::kMod) { *op = BinaryOp::kMod; break; }
        return false;
      default:
        return false;
    }
    Take();
    return true;
  }

  // UnaryExpr := '-' UnaryExpr | UnionExpr
  Result<ExprPtr> ParseUnary() {
    if (Match(TokenKind::kMinus)) {
      ExprPtr operand;
      GKX_ASSIGN_OR_RETURN(operand, ParseUnary());
      return ExprPtr(build::Negate(std::move(operand)));
    }
    return ParseUnion();
  }

  // UnionExpr := PathOrPrimary ('|' PathOrPrimary)*
  Result<ExprPtr> ParseUnion() {
    ExprPtr first;
    GKX_ASSIGN_OR_RETURN(first, ParsePathOrPrimary());
    if (Peek().kind != TokenKind::kPipe) return first;
    std::vector<ExprPtr> branches;
    branches.push_back(std::move(first));
    while (Match(TokenKind::kPipe)) {
      ExprPtr next;
      GKX_ASSIGN_OR_RETURN(next, ParsePathOrPrimary());
      branches.push_back(std::move(next));
    }
    for (const ExprPtr& branch : branches) {
      const Expr::Kind kind = branch->kind();
      if (kind != Expr::Kind::kPath && kind != Expr::Kind::kUnion) {
        return Error("operands of '|' must be location paths");
      }
    }
    // Flatten nested unions (parenthesized unions are still location-path
    // typed, so keep them as branches; only direct nesting is flattened by
    // associativity of the loop above).
    return ExprPtr(build::Union(std::move(branches)));
  }

  Result<ExprPtr> ParsePathOrPrimary() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kNumber: {
        double value = Take().number;
        return ExprPtr(build::Number(value));
      }
      case TokenKind::kLiteral: {
        std::string value = Take().text;
        return ExprPtr(build::Str(std::move(value)));
      }
      case TokenKind::kLParen: {
        Take();
        ExprPtr inner;
        GKX_ASSIGN_OR_RETURN(inner, ParseExpr());
        GKX_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close '('"));
        return inner;
      }
      case TokenKind::kDollar:
        return Error("variables are not supported");
      case TokenKind::kAt:
        return Error("the attribute axis is not supported (outside the "
                     "paper's fragments)");
      case TokenKind::kName:
        // Function call if followed by '(' and not the node() node test.
        if (Peek(1).kind == TokenKind::kLParen && token.text != "node") {
          return ParseFunctionCall();
        }
        return ParseLocationPath();
      case TokenKind::kSlash:
      case TokenKind::kDoubleSlash:
      case TokenKind::kStar:
      case TokenKind::kDot:
      case TokenKind::kDotDot:
        return ParseLocationPath();
      default:
        return Error("expected an expression, found " +
                     std::string(TokenKindName(token.kind)));
    }
  }

  Result<ExprPtr> ParseFunctionCall() {
    std::string name = Take().text;
    Function function;
    if (!FunctionFromName(name, &function)) {
      return Error("unknown function '" + name + "'");
    }
    GKX_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after function name"));
    std::vector<ExprPtr> args;
    if (Peek().kind != TokenKind::kRParen) {
      while (true) {
        ExprPtr arg;
        GKX_ASSIGN_OR_RETURN(arg, ParseExpr());
        args.push_back(std::move(arg));
        if (!Match(TokenKind::kComma)) break;
      }
    }
    GKX_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close the argument list"));
    GKX_RETURN_IF_ERROR(CheckArity(function, args.size()));
    return ExprPtr(build::Call(function, std::move(args)));
  }

  Status CheckArity(Function function, size_t argc) {
    auto arity_error = [&](std::string_view expected) {
      return Error(std::string(FunctionName(function)) + "() expects " +
                   std::string(expected) + " argument(s), got " +
                   std::to_string(argc))
          .status();
    };
    switch (function) {
      case Function::kPosition:
      case Function::kLast:
      case Function::kTrue:
      case Function::kFalse:
        return argc == 0 ? Status::Ok() : arity_error("0");
      case Function::kNot:
      case Function::kBoolean:
      case Function::kCount:
      case Function::kSum:
      case Function::kFloor:
      case Function::kCeiling:
      case Function::kRound:
        return argc == 1 ? Status::Ok() : arity_error("1");
      case Function::kNumber:
      case Function::kString:
      case Function::kStringLength:
      case Function::kNormalizeSpace:
      case Function::kName:
      case Function::kLocalName:
        return argc <= 1 ? Status::Ok() : arity_error("0 or 1");
      case Function::kContains:
      case Function::kStartsWith:
      case Function::kSubstringBefore:
      case Function::kSubstringAfter:
        return argc == 2 ? Status::Ok() : arity_error("2");
      case Function::kSubstring:
        return argc == 2 || argc == 3 ? Status::Ok() : arity_error("2 or 3");
      case Function::kTranslate:
        return argc == 3 ? Status::Ok() : arity_error("3");
      case Function::kConcat:
        return argc >= 2 ? Status::Ok() : arity_error("2 or more");
    }
    return Status::Ok();
  }

  Result<ExprPtr> ParseLocationPath() {
    bool absolute = false;
    std::vector<Step> steps;
    if (Match(TokenKind::kSlash)) {
      absolute = true;
      if (!StartsStep()) {
        return ExprPtr(build::Path(true, {}));  // bare "/"
      }
    } else if (Match(TokenKind::kDoubleSlash)) {
      absolute = true;
      steps.push_back(build::MakeStep(Axis::kDescendantOrSelf, NodeTest::AllNodes()));
      if (!StartsStep()) return Error("expected a step after '//'");
    }
    while (true) {
      Step step;
      GKX_RETURN_IF_ERROR(ParseStep(&step));
      steps.push_back(std::move(step));
      if (Match(TokenKind::kSlash)) {
        if (!StartsStep()) return Error("expected a step after '/'");
        continue;
      }
      if (Match(TokenKind::kDoubleSlash)) {
        steps.push_back(
            build::MakeStep(Axis::kDescendantOrSelf, NodeTest::AllNodes()));
        if (!StartsStep()) return Error("expected a step after '//'");
        continue;
      }
      break;
    }
    return ExprPtr(build::Path(absolute, std::move(steps)));
  }

  bool StartsStep() const {
    switch (Peek().kind) {
      case TokenKind::kName:
      case TokenKind::kStar:
      case TokenKind::kDot:
      case TokenKind::kDotDot:
      case TokenKind::kAt:
        return true;
      default:
        return false;
    }
  }

  Status ParseStep(Step* out) {
    if (Match(TokenKind::kDot)) {
      *out = build::MakeStep(Axis::kSelf, NodeTest::AllNodes());
      return Status::Ok();
    }
    if (Match(TokenKind::kDotDot)) {
      *out = build::MakeStep(Axis::kParent, NodeTest::AllNodes());
      return Status::Ok();
    }
    if (Peek().kind == TokenKind::kAt) {
      return Error("the attribute axis is not supported (outside the paper's "
                   "fragments)")
          .status();
    }

    Axis axis = Axis::kChild;
    if (Peek().kind == TokenKind::kName &&
        Peek(1).kind == TokenKind::kDoubleColon) {
      std::string axis_name = Take().text;
      Take();  // '::'
      if (!AxisFromName(axis_name, &axis)) {
        if (axis_name == "attribute" || axis_name == "namespace") {
          return Error("the " + axis_name +
                       " axis is not supported (outside the paper's fragments)")
              .status();
        }
        return Error("unknown axis '" + axis_name + "'").status();
      }
    }

    NodeTest test;
    if (Match(TokenKind::kStar)) {
      test = NodeTest::Any();
    } else if (Peek().kind == TokenKind::kName) {
      std::string name = Take().text;
      if (name == "node" && Peek().kind == TokenKind::kLParen) {
        Take();
        GKX_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close node()"));
        test = NodeTest::AllNodes();
      } else if (name == "text" && Peek().kind == TokenKind::kLParen) {
        return Error("text() node tests are not supported (the data model "
                     "attaches text to elements)")
            .status();
      } else {
        test = NodeTest::Name(name);
      }
    } else {
      return Error("expected a node test, found " +
                   std::string(TokenKindName(Peek().kind)))
          .status();
    }

    std::vector<ExprPtr> predicates;
    while (Match(TokenKind::kLBracket)) {
      ExprPtr predicate;
      GKX_ASSIGN_OR_RETURN(predicate, ParseExpr());
      predicates.push_back(std::move(predicate));
      GKX_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "to close the predicate"));
    }
    *out = build::MakeStep(axis, std::move(test), std::move(predicates));
    return Status::Ok();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Run();
}

Query MustParse(std::string_view text) {
  auto query = ParseQuery(text);
  if (!query.ok()) {
    std::fprintf(stderr, "MustParse(\"%.*s\") failed: %s\n",
                 static_cast<int>(text.size()), text.data(),
                 query.status().ToString().c_str());
    std::abort();
  }
  return std::move(query).value();
}

}  // namespace gkx::xpath
