// XPath 1.0 tokenizer, including the spec §3.7 disambiguation rule: '*' and
// the names and/or/div/mod are operators exactly when the preceding token can
// end an operand; otherwise they are a wildcard / names.

#ifndef GKX_XPATH_LEXER_HPP_
#define GKX_XPATH_LEXER_HPP_

#include <string>
#include <string_view>
#include <vector>

#include "base/status.hpp"

namespace gkx::xpath {

enum class TokenKind {
  kEof,
  kName,       // NCName (tags, axis names, function names)
  kNumber,     // XPath Number
  kLiteral,    // 'string' or "string"
  kSlash,
  kDoubleSlash,
  kPipe,
  kPlus,
  kMinus,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kDoubleColon,
  kDot,
  kDotDot,
  kStar,       // wildcard
  kMul,        // '*' as multiplication (after disambiguation)
  kAnd,
  kOr,
  kDiv,
  kMod,
  kAt,         // '@' — recognized so the parser can reject it helpfully
  kDollar,     // '$' — likewise
};

std::string_view TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;     // for kName / kLiteral
  double number = 0.0;  // for kNumber
  size_t offset = 0;    // byte offset in the input
};

/// Tokenizes a whole query; the last token is kEof.
Result<std::vector<Token>> Tokenize(std::string_view query);

}  // namespace gkx::xpath

#endif  // GKX_XPATH_LEXER_HPP_
