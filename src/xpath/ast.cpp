#include "xpath/ast.hpp"

#include <utility>

namespace gkx::xpath {
namespace {

struct AxisNameEntry {
  Axis axis;
  std::string_view name;
};

constexpr AxisNameEntry kAxisNames[] = {
    {Axis::kSelf, "self"},
    {Axis::kChild, "child"},
    {Axis::kParent, "parent"},
    {Axis::kDescendant, "descendant"},
    {Axis::kDescendantOrSelf, "descendant-or-self"},
    {Axis::kAncestor, "ancestor"},
    {Axis::kAncestorOrSelf, "ancestor-or-self"},
    {Axis::kFollowing, "following"},
    {Axis::kFollowingSibling, "following-sibling"},
    {Axis::kPreceding, "preceding"},
    {Axis::kPrecedingSibling, "preceding-sibling"},
};

struct FunctionNameEntry {
  Function function;
  std::string_view name;
};

constexpr FunctionNameEntry kFunctionNames[] = {
    {Function::kPosition, "position"},
    {Function::kLast, "last"},
    {Function::kNot, "not"},
    {Function::kTrue, "true"},
    {Function::kFalse, "false"},
    {Function::kBoolean, "boolean"},
    {Function::kNumber, "number"},
    {Function::kString, "string"},
    {Function::kCount, "count"},
    {Function::kSum, "sum"},
    {Function::kConcat, "concat"},
    {Function::kContains, "contains"},
    {Function::kStartsWith, "starts-with"},
    {Function::kStringLength, "string-length"},
    {Function::kNormalizeSpace, "normalize-space"},
    {Function::kSubstring, "substring"},
    {Function::kSubstringBefore, "substring-before"},
    {Function::kSubstringAfter, "substring-after"},
    {Function::kTranslate, "translate"},
    {Function::kFloor, "floor"},
    {Function::kCeiling, "ceiling"},
    {Function::kRound, "round"},
    {Function::kName, "name"},
    {Function::kLocalName, "local-name"},
};

}  // namespace

std::string_view AxisName(Axis axis) {
  for (const auto& entry : kAxisNames) {
    if (entry.axis == axis) return entry.name;
  }
  GKX_CHECK(false);
  return {};
}

bool AxisFromName(std::string_view name, Axis* out) {
  for (const auto& entry : kAxisNames) {
    if (entry.name == name) {
      *out = entry.axis;
      return true;
    }
  }
  return false;
}

bool IsReverseAxis(Axis axis) {
  switch (axis) {
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
    case Axis::kPreceding:
    case Axis::kPrecedingSibling:
      return true;
    default:
      return false;
  }
}

std::string NodeTest::ToString() const {
  switch (kind) {
    case Kind::kName:
      return name;
    case Kind::kAny:
      return "*";
    case Kind::kNode:
      return "node()";
  }
  GKX_CHECK(false);
  return {};
}

std::string_view BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr: return "or";
    case BinaryOp::kAnd: return "and";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "div";
    case BinaryOp::kMod: return "mod";
  }
  GKX_CHECK(false);
  return {};
}

bool IsRelationalOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsArithmeticOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return true;
    default:
      return false;
  }
}

std::string_view FunctionName(Function function) {
  for (const auto& entry : kFunctionNames) {
    if (entry.function == function) return entry.name;
  }
  GKX_CHECK(false);
  return {};
}

bool FunctionFromName(std::string_view name, Function* out) {
  for (const auto& entry : kFunctionNames) {
    if (entry.name == name) {
      *out = entry.function;
      return true;
    }
  }
  return false;
}

std::string_view ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNodeSet: return "node-set";
    case ValueType::kBoolean: return "boolean";
    case ValueType::kNumber: return "number";
    case ValueType::kString: return "string";
  }
  GKX_CHECK(false);
  return {};
}

ValueType StaticType(const Expr& expr) {
  switch (expr.kind()) {
    case Expr::Kind::kNumberLiteral:
      return ValueType::kNumber;
    case Expr::Kind::kStringLiteral:
      return ValueType::kString;
    case Expr::Kind::kPath:
    case Expr::Kind::kUnion:
      return ValueType::kNodeSet;
    case Expr::Kind::kNegate:
      return ValueType::kNumber;
    case Expr::Kind::kBinary: {
      const auto& binary = expr.As<BinaryExpr>();
      if (IsArithmeticOp(binary.op())) return ValueType::kNumber;
      return ValueType::kBoolean;  // and/or/relops
    }
    case Expr::Kind::kFunctionCall: {
      switch (expr.As<FunctionCall>().function()) {
        case Function::kPosition:
        case Function::kLast:
        case Function::kNumber:
        case Function::kCount:
        case Function::kSum:
        case Function::kStringLength:
        case Function::kFloor:
        case Function::kCeiling:
        case Function::kRound:
          return ValueType::kNumber;
        case Function::kNot:
        case Function::kTrue:
        case Function::kFalse:
        case Function::kBoolean:
        case Function::kContains:
        case Function::kStartsWith:
          return ValueType::kBoolean;
        case Function::kString:
        case Function::kConcat:
        case Function::kNormalizeSpace:
        case Function::kSubstring:
        case Function::kSubstringBefore:
        case Function::kSubstringAfter:
        case Function::kTranslate:
        case Function::kName:
        case Function::kLocalName:
          return ValueType::kString;
      }
      GKX_CHECK(false);
      return ValueType::kBoolean;
    }
  }
  GKX_CHECK(false);
  return ValueType::kBoolean;
}

Query Query::Create(ExprPtr root) {
  GKX_CHECK(root != nullptr);
  Query query;
  query.root_ = std::move(root);
  query.Index(query.root_.get());
  return query;
}

void Query::Index(Expr* expr) {
  expr->id_ = static_cast<int>(exprs_.size());
  exprs_.push_back(expr);
  switch (expr->kind()) {
    case Expr::Kind::kNumberLiteral:
    case Expr::Kind::kStringLiteral:
      break;
    case Expr::Kind::kBinary: {
      auto* binary = static_cast<BinaryExpr*>(expr);
      Index(const_cast<Expr*>(&binary->lhs()));
      Index(const_cast<Expr*>(&binary->rhs()));
      break;
    }
    case Expr::Kind::kNegate: {
      auto* negate = static_cast<NegateExpr*>(expr);
      Index(const_cast<Expr*>(&negate->operand()));
      break;
    }
    case Expr::Kind::kFunctionCall: {
      auto* call = static_cast<FunctionCall*>(expr);
      for (size_t i = 0; i < call->arg_count(); ++i) {
        Index(const_cast<Expr*>(&call->arg(i)));
      }
      break;
    }
    case Expr::Kind::kPath: {
      auto* path = static_cast<PathExpr*>(expr);
      for (Step& step : path->steps_) {
        step.id = static_cast<int>(steps_.size());
        steps_.push_back(&step);
        for (ExprPtr& predicate : step.predicates) {
          Index(predicate.get());
        }
      }
      break;
    }
    case Expr::Kind::kUnion: {
      auto* u = static_cast<UnionExpr*>(expr);
      for (size_t i = 0; i < u->branch_count(); ++i) {
        Index(const_cast<Expr*>(&u->branch(i)));
      }
      break;
    }
  }
}

}  // namespace gkx::xpath
