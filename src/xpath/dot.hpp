// Graphviz export of query trees — the query-tree traversal is the central
// object of the NAuxPDA algorithm (Lemma 5.4), so being able to see TQ is
// genuinely useful when studying the reductions' ϕ/ψ/π towers.

#ifndef GKX_XPATH_DOT_HPP_
#define GKX_XPATH_DOT_HPP_

#include <string>

#include "xpath/ast.hpp"

namespace gkx::xpath {

/// DOT rendering of the query tree TQ. Expression nodes are ellipses
/// (labelled with their operator/value and expression id), steps are boxes
/// (axis::test, step id); predicate edges are dashed.
std::string ToDot(const Query& query);

}  // namespace gkx::xpath

#endif  // GKX_XPATH_DOT_HPP_
