// The paper's fragment taxonomy (Figure 1) as a syntactic classifier:
//
//   PF            Def §4: location paths only, no conditions       NL-complete
//   pos. Core     Def 2.5 minus not()                              LOGCFL-complete
//   Core XPath    Def 2.5                                          P-complete
//   pWF           Def 5.1 (WF minus not(), minus iterated
//                 predicates, bounded arithmetic nesting)          LOGCFL-complete
//   WF            Def 2.6 (Wadler fragment)                        P-complete
//   pXPath        Def 6.1 (full XPath minus the analogous
//                 restrictions)                                    LOGCFL-complete
//   XPath         everything parsed                                P-complete
//
// Membership is syntactic. Remark 5.2's observation — positive Core XPath
// with iterated predicates is *semantically* in pWF — is available through
// the NormalizeIteratedPredicates transform (transform.hpp).

#ifndef GKX_XPATH_FRAGMENT_HPP_
#define GKX_XPATH_FRAGMENT_HPP_

#include <string>
#include <string_view>
#include <vector>

#include "xpath/analysis.hpp"
#include "xpath/ast.hpp"

namespace gkx::xpath {

enum class Fragment {
  kPF,
  kPositiveCore,
  kCore,
  kPWF,
  kWF,
  kPXPath,
  kFullXPath,
};

std::string_view FragmentName(Fragment fragment);

/// Combined-complexity verdict for a fragment, per Figure 1.
std::string_view FragmentComplexity(Fragment fragment);

struct ClassifyOptions {
  /// The constant K bounding arithmetic nesting (pWF/pXPath restriction) and
  /// concat nesting/arity (pXPath restriction 4).
  int nesting_bound = 8;
};

struct FragmentReport {
  bool in_pf = false;
  bool in_positive_core = false;
  bool in_core = false;
  bool in_pwf = false;
  bool in_wf = false;
  bool in_pxpath = false;
  // in full XPath by construction (it parsed).

  /// The smallest fragment containing the query (priority: PF, posCore, pWF,
  /// Core, WF, pXPath, XPath).
  Fragment smallest = Fragment::kFullXPath;

  /// Human-readable exclusion reasons, one per fragment boundary crossed.
  std::vector<std::string> notes;

  bool Contains(Fragment fragment) const;
};

/// Classification of a single predicate subtree — the bexpr grammar slot of
/// the fragment definitions, as opposed to a whole query. The plan layer
/// classifies every step's predicates through this to decide which engine a
/// subexpression can soundly run on (Core bexprs are evaluable set-at-a-time
/// as condition sets; anything else needs per-context evaluation).
struct ConditionReport {
  bool in_core = false;  // Core XPath bexpr (Def 2.5): and/or/not over paths
  std::string note;      // first reason it exceeds Core ("" when in_core)
};

/// Classifies `expr` as it appears in predicate position.
ConditionReport ClassifyCondition(const Expr& expr);

/// Classifies a query. Uses a fresh Analyze() pass.
FragmentReport Classify(const Query& query, const ClassifyOptions& options = {});

/// Classifies with a precomputed analysis (must belong to the same query).
FragmentReport Classify(const Query& query, const QueryAnalysis& analysis,
                        const ClassifyOptions& options = {});

}  // namespace gkx::xpath

#endif  // GKX_XPATH_FRAGMENT_HPP_
