// Programmatic AST construction helpers. Used by the parser, the random
// query generator, and every hardness reduction (which synthesize the
// paper's ϕ/ψ/π condition towers directly as ASTs).

#ifndef GKX_XPATH_BUILD_HPP_
#define GKX_XPATH_BUILD_HPP_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "xpath/ast.hpp"

namespace gkx::xpath::build {

ExprPtr Number(double value);
ExprPtr Str(std::string value);
ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr And(ExprPtr lhs, ExprPtr rhs);
ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
ExprPtr Eq(ExprPtr lhs, ExprPtr rhs);
ExprPtr Gt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Negate(ExprPtr operand);
ExprPtr Call(Function function, std::vector<ExprPtr> args = {});
ExprPtr Not(ExprPtr arg);
ExprPtr Position();
ExprPtr Last();

/// A step with optional predicates.
Step MakeStep(Axis axis, NodeTest test, std::vector<ExprPtr> predicates = {});

/// Convenience: axis::name step, with optional predicates.
Step NamedStep(Axis axis, std::string_view name, std::vector<ExprPtr> predicates = {});

/// Convenience: axis::* step, with optional predicates.
Step AnyStep(Axis axis, std::vector<ExprPtr> predicates = {});

ExprPtr Path(bool absolute, std::vector<Step> steps);

/// Single-step relative path — the usual form of a condition (e.g. self::G).
ExprPtr StepPath(Step step);

/// The label test T(l) of Remark 3.1, realized as the Core XPath condition
/// `self::l` (true exactly on nodes carrying label l).
ExprPtr LabelTest(std::string_view label);

ExprPtr Union(std::vector<ExprPtr> branches);

/// Deep copies (the Theorem 4.2 reduction duplicates subtrees).
ExprPtr CloneExpr(const Expr& expr);
Step CloneStep(const Step& step);

}  // namespace gkx::xpath::build

#endif  // GKX_XPATH_BUILD_HPP_
