// XPath abstract syntax. Covers the grammar union of the paper's fragments:
//   * Core XPath (Def 2.5): location paths over the 11 axes, node tests,
//     predicate conditions with and/or/not, path composition, union;
//   * the Wadler fragment WF (Def 2.6): position()/last(), number constants,
//     arithmetic and relational operators;
//   * the extra constructs pXPath regulates (Def 6.1): boolean()/count()/
//     sum()/string()/number()/concat()/string functions, string literals.
// Attribute/namespace axes and variables are outside every fragment the paper
// studies and are rejected by the parser.
//
// Ownership: expressions form a unique_ptr tree. A finished tree is wrapped
// in a Query, which assigns dense ids to every expression and every step
// (evaluators key their memo tables by these ids) and exposes a flat index.

#ifndef GKX_XPATH_AST_HPP_
#define GKX_XPATH_AST_HPP_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/check.hpp"
#include "base/identity.hpp"

namespace gkx::xpath {

/// The 11 axes of the paper (Def 2.5).
enum class Axis {
  kSelf,
  kChild,
  kParent,
  kDescendant,
  kDescendantOrSelf,
  kAncestor,
  kAncestorOrSelf,
  kFollowing,
  kFollowingSibling,
  kPreceding,
  kPrecedingSibling,
};

inline constexpr int kNumAxes = 11;

/// XPath name of an axis ("descendant-or-self", ...).
std::string_view AxisName(Axis axis);

/// Parses an axis name; returns false if unknown.
bool AxisFromName(std::string_view name, Axis* out);

/// True for axes whose proximity order is reverse document order
/// (ancestor, ancestor-or-self, preceding, preceding-sibling).
bool IsReverseAxis(Axis axis);

/// A node test: a tag name, '*', or node().
struct NodeTest {
  enum class Kind { kName, kAny, kNode };
  Kind kind = Kind::kAny;
  std::string name;  // only for kName

  static NodeTest Any() { return NodeTest{Kind::kAny, {}}; }
  static NodeTest AllNodes() { return NodeTest{Kind::kNode, {}}; }
  static NodeTest Name(std::string_view n) {
    return NodeTest{Kind::kName, std::string(n)};
  }
  std::string ToString() const;
};

/// Binary operators, in increasing precedence groups.
enum class BinaryOp {
  kOr,
  kAnd,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
};

std::string_view BinaryOpName(BinaryOp op);
bool IsRelationalOp(BinaryOp op);  // = != < <= > >=
bool IsArithmeticOp(BinaryOp op);  // + - * div mod

/// Built-in functions (the XPath 1.0 core library subset used by the paper's
/// fragment definitions).
enum class Function {
  kPosition,
  kLast,
  kNot,
  kTrue,
  kFalse,
  kBoolean,
  kNumber,
  kString,
  kCount,
  kSum,
  kConcat,
  kContains,
  kStartsWith,
  kStringLength,
  kNormalizeSpace,
  kSubstring,
  kSubstringBefore,
  kSubstringAfter,
  kTranslate,
  kFloor,
  kCeiling,
  kRound,
  kName,
  kLocalName,
};

std::string_view FunctionName(Function function);
bool FunctionFromName(std::string_view name, Function* out);

/// Static XPath 1.0 type of an expression.
enum class ValueType { kNodeSet, kBoolean, kNumber, kString };
std::string_view ValueTypeName(ValueType type);

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One location step: axis '::' node-test followed by zero or more
/// predicates. Iterated predicates ([e1][e2]...) re-rank positions between
/// filters (this is exactly the power Theorem 5.7 exploits).
struct Step {
  Axis axis = Axis::kChild;
  NodeTest test;
  std::vector<ExprPtr> predicates;

  /// Dense step id within the owning Query (assigned by Query).
  int id = -1;
};

/// Base of all expressions.
class Expr {
 public:
  enum class Kind {
    kNumberLiteral,
    kStringLiteral,
    kBinary,
    kNegate,
    kFunctionCall,
    kPath,
    kUnion,
  };

  virtual ~Expr() = default;
  Kind kind() const { return kind_; }

  /// Dense expression id within the owning Query (assigned by Query).
  int id() const { return id_; }

  /// Downcast helper; checked.
  template <typename T>
  const T& As() const {
    const T* t = dynamic_cast<const T*>(this);
    GKX_CHECK(t != nullptr);
    return *t;
  }

 protected:
  explicit Expr(Kind kind) : kind_(kind) {}

 private:
  friend class Query;
  Kind kind_;
  int id_ = -1;
};

/// A numeric constant.
class NumberLiteral : public Expr {
 public:
  explicit NumberLiteral(double value)
      : Expr(Kind::kNumberLiteral), value_(value) {}
  double value() const { return value_; }

 private:
  double value_;
};

/// A string literal.
class StringLiteral : public Expr {
 public:
  explicit StringLiteral(std::string value)
      : Expr(Kind::kStringLiteral), value_(std::move(value)) {}
  const std::string& value() const { return value_; }

 private:
  std::string value_;
};

/// lhs op rhs.
class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(Kind::kBinary), op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {
    GKX_CHECK(lhs_ != nullptr && rhs_ != nullptr);
  }
  BinaryOp op() const { return op_; }
  const Expr& lhs() const { return *lhs_; }
  const Expr& rhs() const { return *rhs_; }

 private:
  BinaryOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// Unary minus.
class NegateExpr : public Expr {
 public:
  explicit NegateExpr(ExprPtr operand)
      : Expr(Kind::kNegate), operand_(std::move(operand)) {
    GKX_CHECK(operand_ != nullptr);
  }
  const Expr& operand() const { return *operand_; }

 private:
  ExprPtr operand_;
};

/// f(arg1, ..., argN).
class FunctionCall : public Expr {
 public:
  FunctionCall(Function function, std::vector<ExprPtr> args)
      : Expr(Kind::kFunctionCall), function_(function), args_(std::move(args)) {
    for (const ExprPtr& arg : args_) GKX_CHECK(arg != nullptr);
  }
  Function function() const { return function_; }
  size_t arg_count() const { return args_.size(); }
  const Expr& arg(size_t i) const { return *args_[i]; }

 private:
  Function function_;
  std::vector<ExprPtr> args_;
};

/// A location path: optional leading '/' (absolute) and a step sequence.
/// An absolute path with zero steps denotes the root node itself ("/").
class PathExpr : public Expr {
 public:
  PathExpr(bool absolute, std::vector<Step> steps)
      : Expr(Kind::kPath), absolute_(absolute), steps_(std::move(steps)) {
    GKX_CHECK(absolute_ || !steps_.empty());
  }
  bool absolute() const { return absolute_; }
  size_t step_count() const { return steps_.size(); }
  const Step& step(size_t i) const { return steps_[i]; }

 private:
  friend class Query;
  bool absolute_;
  std::vector<Step> steps_;
};

/// path1 | path2 | ... (at least two branches; parser flattens).
class UnionExpr : public Expr {
 public:
  explicit UnionExpr(std::vector<ExprPtr> branches)
      : Expr(Kind::kUnion), branches_(std::move(branches)) {
    GKX_CHECK_GE(branches_.size(), 2u);
    for (const ExprPtr& b : branches_) GKX_CHECK(b != nullptr);
  }
  size_t branch_count() const { return branches_.size(); }
  const Expr& branch(size_t i) const { return *branches_[i]; }

 private:
  std::vector<ExprPtr> branches_;
};

/// Static XPath 1.0 type of an expression.
ValueType StaticType(const Expr& expr);

/// An immutable, id-indexed query. Construct with Query::Create; after that
/// the tree never moves, so Expr*/Step* remain valid for the Query lifetime.
class Query {
 public:
  /// Wraps an expression tree, assigning dense ids (preorder).
  static Query Create(ExprPtr root);

  Query(Query&&) = default;
  Query& operator=(Query&&) = default;

  const Expr& root() const { return *root_; }

  /// Process-unique bind identity (base/identity.hpp): evaluators that keep
  /// memo tables across Bind calls compare (address, serial) so a recycled
  /// allocation can never masquerade as the query the tables were built for.
  uint64_t serial() const { return identity_.value(); }

  /// Number of expressions / steps (ids are dense in [0, count)).
  int num_exprs() const { return static_cast<int>(exprs_.size()); }
  int num_steps() const { return static_cast<int>(steps_.size()); }

  const Expr& expr(int id) const {
    GKX_CHECK(id >= 0 && id < num_exprs());
    return *exprs_[static_cast<size_t>(id)];
  }
  const Step& step(int id) const {
    GKX_CHECK(id >= 0 && id < num_steps());
    return *steps_[static_cast<size_t>(id)];
  }

  /// Syntactic size |Q|: number of expression nodes plus steps.
  int size() const { return num_exprs() + num_steps(); }

 private:
  Query() = default;
  void Index(Expr* expr);

  IdentitySerial identity_;
  ExprPtr root_;
  std::vector<Expr*> exprs_;
  std::vector<Step*> steps_;
};

}  // namespace gkx::xpath

#endif  // GKX_XPATH_AST_HPP_
