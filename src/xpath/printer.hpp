// AST -> XPath surface syntax, in canonical unabbreviated form (explicit
// axes, minimal parentheses). Printing then re-parsing yields an identical
// tree, which the round-trip tests assert.

#ifndef GKX_XPATH_PRINTER_HPP_
#define GKX_XPATH_PRINTER_HPP_

#include <string>

#include "xpath/ast.hpp"

namespace gkx::xpath {

/// Serializes an expression (sub)tree.
std::string ToXPathString(const Expr& expr);

/// Serializes a whole query.
std::string ToXPathString(const Query& query);

/// Serializes a single step (axis::test[preds]).
std::string ToXPathString(const Step& step);

}  // namespace gkx::xpath

#endif  // GKX_XPATH_PRINTER_HPP_
