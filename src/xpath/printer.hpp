// AST -> XPath surface syntax, in canonical unabbreviated form (explicit
// axes, minimal parentheses). Printing then re-parsing yields an identical
// tree, which the round-trip tests assert.

#ifndef GKX_XPATH_PRINTER_HPP_
#define GKX_XPATH_PRINTER_HPP_

#include <string>

#include "xpath/ast.hpp"

namespace gkx::xpath {

/// Serializes an expression (sub)tree.
std::string ToXPathString(const Expr& expr);

/// Serializes a whole query.
std::string ToXPathString(const Query& query);

/// Serializes a single step (axis::test[preds]).
std::string ToXPathString(const Step& step);

/// Canonical plan-cache key: the query is run through Optimize() and printed
/// in unabbreviated syntax, so equivalent spellings — "//a", "/descendant-
/// or-self::node()/child::a", "/descendant::a[true()]" — collapse to one
/// string. Canonicalization never changes query semantics (Optimize is the
/// metamorphic-tested rewrite layer), but it may land a query in a smaller
/// fragment than its surface syntax.
std::string CanonicalXPathString(const Query& query);

}  // namespace gkx::xpath

#endif  // GKX_XPATH_PRINTER_HPP_
