#include "xpath/fragment.hpp"

namespace gkx::xpath {
namespace {

/// Is this a Core XPath node test? (Def 2.5: a tag or '*'; node() is
/// equivalent to '*' in an element-only data model and is accepted.)
bool IsCoreNodeTest(const NodeTest& test) {
  (void)test;
  return true;
}

bool IsCorePath(const Expr& expr);

/// Core XPath "bexpr": and/or/not over bexprs, or a location path
/// (exists-semantics condition).
bool IsCoreCondition(const Expr& expr) {
  switch (expr.kind()) {
    case Expr::Kind::kBinary: {
      const auto& binary = expr.As<BinaryExpr>();
      if (binary.op() != BinaryOp::kAnd && binary.op() != BinaryOp::kOr) {
        return false;
      }
      return IsCoreCondition(binary.lhs()) && IsCoreCondition(binary.rhs());
    }
    case Expr::Kind::kFunctionCall: {
      const auto& call = expr.As<FunctionCall>();
      return call.function() == Function::kNot && call.arg_count() == 1 &&
             IsCoreCondition(call.arg(0));
    }
    case Expr::Kind::kPath:
    case Expr::Kind::kUnion:
      return IsCorePath(expr);
    default:
      return false;
  }
}

bool IsCorePath(const Expr& expr) {
  switch (expr.kind()) {
    case Expr::Kind::kPath: {
      const auto& path = expr.As<PathExpr>();
      for (size_t i = 0; i < path.step_count(); ++i) {
        const Step& step = path.step(i);
        if (!IsCoreNodeTest(step.test)) return false;
        for (const ExprPtr& predicate : step.predicates) {
          if (!IsCoreCondition(*predicate)) return false;
        }
      }
      return true;
    }
    case Expr::Kind::kUnion: {
      const auto& u = expr.As<UnionExpr>();
      for (size_t i = 0; i < u.branch_count(); ++i) {
        if (!IsCorePath(u.branch(i))) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

bool IsPredicateFreePath(const Expr& expr) {
  switch (expr.kind()) {
    case Expr::Kind::kPath: {
      const auto& path = expr.As<PathExpr>();
      for (size_t i = 0; i < path.step_count(); ++i) {
        if (!path.step(i).predicates.empty()) return false;
      }
      return true;
    }
    case Expr::Kind::kUnion: {
      const auto& u = expr.As<UnionExpr>();
      for (size_t i = 0; i < u.branch_count(); ++i) {
        if (!IsPredicateFreePath(u.branch(i))) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

bool IsWfNumber(const Expr& expr);
bool IsWfPath(const Expr& expr);

/// WF "bexpr" (Def 2.6): and/or/not over bexprs, a location path, or
/// nexpr RelOp nexpr.
bool IsWfCondition(const Expr& expr) {
  switch (expr.kind()) {
    case Expr::Kind::kBinary: {
      const auto& binary = expr.As<BinaryExpr>();
      if (binary.op() == BinaryOp::kAnd || binary.op() == BinaryOp::kOr) {
        return IsWfCondition(binary.lhs()) && IsWfCondition(binary.rhs());
      }
      if (IsRelationalOp(binary.op())) {
        return IsWfNumber(binary.lhs()) && IsWfNumber(binary.rhs());
      }
      return false;
    }
    case Expr::Kind::kFunctionCall: {
      const auto& call = expr.As<FunctionCall>();
      return call.function() == Function::kNot && call.arg_count() == 1 &&
             IsWfCondition(call.arg(0));
    }
    case Expr::Kind::kPath:
    case Expr::Kind::kUnion:
      return IsWfPath(expr);
    default:
      return false;
  }
}

/// WF "nexpr": position() | last() | number | nexpr ArithOp nexpr.
bool IsWfNumber(const Expr& expr) {
  switch (expr.kind()) {
    case Expr::Kind::kNumberLiteral:
      return true;
    case Expr::Kind::kNegate:
      return IsWfNumber(expr.As<NegateExpr>().operand());
    case Expr::Kind::kBinary: {
      const auto& binary = expr.As<BinaryExpr>();
      return IsArithmeticOp(binary.op()) && IsWfNumber(binary.lhs()) &&
             IsWfNumber(binary.rhs());
    }
    case Expr::Kind::kFunctionCall: {
      const auto& call = expr.As<FunctionCall>();
      return call.function() == Function::kPosition ||
             call.function() == Function::kLast;
    }
    default:
      return false;
  }
}

bool IsWfPath(const Expr& expr) {
  switch (expr.kind()) {
    case Expr::Kind::kPath: {
      const auto& path = expr.As<PathExpr>();
      for (size_t i = 0; i < path.step_count(); ++i) {
        for (const ExprPtr& predicate : path.step(i).predicates) {
          // Numeric predicates are accepted as the standard [n] ≡
          // [position() = n] desugaring of a bexpr.
          if (!IsWfCondition(*predicate) && !IsWfNumber(*predicate)) {
            return false;
          }
        }
      }
      return true;
    }
    case Expr::Kind::kUnion: {
      const auto& u = expr.As<UnionExpr>();
      for (size_t i = 0; i < u.branch_count(); ++i) {
        if (!IsWfPath(u.branch(i))) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

/// WF "expr" start production: locpath | bexpr | nexpr.
bool IsWfQuery(const Expr& expr) {
  return IsWfPath(expr) || IsWfCondition(expr) || IsWfNumber(expr);
}

bool UsesForbiddenPXPathFunction(const QueryAnalysis& analysis,
                                 std::string* which) {
  static constexpr Function kForbidden[] = {
      Function::kNot,          Function::kCount,
      Function::kSum,          Function::kString,
      Function::kNumber,       Function::kLocalName,
      Function::kName,         Function::kStringLength,
      Function::kNormalizeSpace,
      // String manipulators in the spirit of Def 6.1 restriction 2 (they
      // read document strings of unbounded size): see DESIGN.md.
      Function::kSubstring,    Function::kSubstringBefore,
      Function::kSubstringAfter, Function::kTranslate,
  };
  for (Function f : kForbidden) {
    if (analysis.functions_used.count(f) > 0) {
      *which = std::string(FunctionName(f));
      return true;
    }
  }
  return false;
}

}  // namespace

ConditionReport ClassifyCondition(const Expr& expr) {
  ConditionReport report;
  report.in_core = IsCoreCondition(expr);
  if (!report.in_core) {
    if (IsWfCondition(expr) || IsWfNumber(expr)) {
      report.note = "positional/arithmetic condition (WF, Def 2.6)";
    } else {
      report.note = "uses constructs beyond Core bexprs (Def 2.5)";
    }
  }
  return report;
}

std::string_view FragmentName(Fragment fragment) {
  switch (fragment) {
    case Fragment::kPF: return "PF";
    case Fragment::kPositiveCore: return "positive Core XPath";
    case Fragment::kCore: return "Core XPath";
    case Fragment::kPWF: return "pWF";
    case Fragment::kWF: return "WF";
    case Fragment::kPXPath: return "pXPath";
    case Fragment::kFullXPath: return "XPath";
  }
  GKX_CHECK(false);
  return {};
}

std::string_view FragmentComplexity(Fragment fragment) {
  switch (fragment) {
    case Fragment::kPF:
      return "NL-complete (Theorem 4.3)";
    case Fragment::kPositiveCore:
      return "LOGCFL-complete (Theorems 4.1/4.2)";
    case Fragment::kPWF:
      return "LOGCFL-complete (Theorem 5.5; hardness via pos. Core ⊆ pWF)";
    case Fragment::kPXPath:
      return "LOGCFL-complete (Theorem 6.2)";
    case Fragment::kCore:
      return "P-complete (Theorem 3.2)";
    case Fragment::kWF:
      return "P-complete (Core XPath ⊆ WF; membership by Prop 2.7)";
    case Fragment::kFullXPath:
      return "P-complete (Prop 2.7 + Theorem 3.2)";
  }
  GKX_CHECK(false);
  return {};
}

bool FragmentReport::Contains(Fragment fragment) const {
  switch (fragment) {
    case Fragment::kPF: return in_pf;
    case Fragment::kPositiveCore: return in_positive_core;
    case Fragment::kCore: return in_core;
    case Fragment::kPWF: return in_pwf;
    case Fragment::kWF: return in_wf;
    case Fragment::kPXPath: return in_pxpath;
    case Fragment::kFullXPath: return true;
  }
  GKX_CHECK(false);
  return false;
}

FragmentReport Classify(const Query& query, const ClassifyOptions& options) {
  return Classify(query, Analyze(query), options);
}

FragmentReport Classify(const Query& query, const QueryAnalysis& analysis,
                        const ClassifyOptions& options) {
  FragmentReport report;
  const Expr& root = query.root();

  report.in_core = IsCorePath(root);
  report.in_positive_core = report.in_core && !analysis.has_negation;
  report.in_pf = report.in_positive_core && IsPredicateFreePath(root) &&
                 !analysis.has_predicates;
  report.in_wf = IsWfQuery(root);

  const bool nesting_ok = analysis.max_arith_depth <= options.nesting_bound;
  report.in_pwf = report.in_wf && !analysis.has_negation &&
                  analysis.max_predicates_per_step <= 1 && nesting_ok;

  std::string forbidden_function;
  const bool pxpath_functions_ok =
      !UsesForbiddenPXPathFunction(analysis, &forbidden_function);
  report.in_pxpath = pxpath_functions_ok &&
                     analysis.max_predicates_per_step <= 1 &&
                     !analysis.relop_with_boolean_operand && nesting_ok &&
                     analysis.max_concat_depth <= options.nesting_bound &&
                     analysis.max_concat_arity <= options.nesting_bound;

  // Notes: why the query fails each next-smaller fragment.
  if (!report.in_pf && report.in_positive_core) {
    report.notes.push_back("not PF: uses conditions");
  }
  if (!report.in_positive_core && report.in_core) {
    report.notes.push_back("not positive Core XPath: uses not()");
  }
  if (!report.in_pwf && report.in_wf) {
    if (analysis.has_negation) {
      report.notes.push_back("not pWF: uses not() (Def 5.1 restriction 2)");
    }
    if (analysis.max_predicates_per_step > 1) {
      report.notes.push_back(
          "not pWF: iterated predicates (Def 5.1 restriction 1)");
    }
    if (!nesting_ok) {
      report.notes.push_back(
          "not pWF: arithmetic nesting exceeds the bound (restriction 3)");
    }
  }
  if (!report.in_pxpath) {
    if (!pxpath_functions_ok) {
      report.notes.push_back("not pXPath: uses " + forbidden_function +
                             "() (Def 6.1 restriction 2)");
    }
    if (analysis.max_predicates_per_step > 1) {
      report.notes.push_back(
          "not pXPath: iterated predicates (Def 6.1 restriction 1)");
    }
    if (analysis.relop_with_boolean_operand) {
      report.notes.push_back(
          "not pXPath: RelOp with a boolean operand (Def 6.1 restriction 3)");
    }
    if (!nesting_ok || analysis.max_concat_depth > options.nesting_bound ||
        analysis.max_concat_arity > options.nesting_bound) {
      report.notes.push_back(
          "not pXPath: arithmetic/concat nesting or arity exceeds the bound "
          "(Def 6.1 restriction 4)");
    }
  }

  if (report.in_pf) {
    report.smallest = Fragment::kPF;
  } else if (report.in_positive_core) {
    report.smallest = Fragment::kPositiveCore;
  } else if (report.in_pwf) {
    report.smallest = Fragment::kPWF;
  } else if (report.in_core) {
    report.smallest = Fragment::kCore;
  } else if (report.in_wf) {
    report.smallest = Fragment::kWF;
  } else if (report.in_pxpath) {
    report.smallest = Fragment::kPXPath;
  } else {
    report.smallest = Fragment::kFullXPath;
  }
  return report;
}

}  // namespace gkx::xpath
