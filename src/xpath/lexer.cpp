#include "xpath/lexer.hpp"

#include <cctype>

#include "base/string_util.hpp"

namespace gkx::xpath {
namespace {

bool IsNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool IsNameChar(char c) {
  return IsNameStart(c) || (c >= '0' && c <= '9') || c == '.' || c == '-';
}

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

/// True if a token of this kind can end an operand, which by XPath §3.7
/// forces the next '*'/and/or/div/mod to be an operator.
bool EndsOperand(TokenKind kind) {
  switch (kind) {
    case TokenKind::kName:
    case TokenKind::kNumber:
    case TokenKind::kLiteral:
    case TokenKind::kRParen:
    case TokenKind::kRBracket:
    case TokenKind::kDot:
    case TokenKind::kDotDot:
    case TokenKind::kStar:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "end of input";
    case TokenKind::kName: return "name";
    case TokenKind::kNumber: return "number";
    case TokenKind::kLiteral: return "string literal";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kDoubleSlash: return "'//'";
    case TokenKind::kPipe: return "'|'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDoubleColon: return "'::'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kDotDot: return "'..'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kMul: return "'*' (multiply)";
    case TokenKind::kAnd: return "'and'";
    case TokenKind::kOr: return "'or'";
    case TokenKind::kDiv: return "'div'";
    case TokenKind::kMod: return "'mod'";
    case TokenKind::kAt: return "'@'";
    case TokenKind::kDollar: return "'$'";
  }
  return "token";
}

Result<std::vector<Token>> Tokenize(std::string_view query) {
  std::vector<Token> tokens;
  size_t pos = 0;
  auto error = [&](std::string message) {
    return InvalidArgumentError("XPath lex error at offset " +
                                std::to_string(pos) + ": " + std::move(message));
  };
  auto push = [&](TokenKind kind, size_t offset, std::string text = {},
                  double number = 0.0) {
    tokens.push_back(Token{kind, std::move(text), number, offset});
  };

  while (pos < query.size()) {
    char c = query[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    size_t start = pos;
    bool operand_before = !tokens.empty() && EndsOperand(tokens.back().kind);

    if (IsDigit(c) || (c == '.' && pos + 1 < query.size() && IsDigit(query[pos + 1]))) {
      while (pos < query.size() && IsDigit(query[pos])) ++pos;
      if (pos < query.size() && query[pos] == '.') {
        ++pos;
        while (pos < query.size() && IsDigit(query[pos])) ++pos;
      }
      double value = ParseXPathNumber(query.substr(start, pos - start));
      push(TokenKind::kNumber, start, {}, value);
      continue;
    }
    if (IsNameStart(c)) {
      while (pos < query.size() && IsNameChar(query[pos])) ++pos;
      std::string name(query.substr(start, pos - start));
      if (operand_before) {
        if (name == "and") { push(TokenKind::kAnd, start); continue; }
        if (name == "or") { push(TokenKind::kOr, start); continue; }
        if (name == "div") { push(TokenKind::kDiv, start); continue; }
        if (name == "mod") { push(TokenKind::kMod, start); continue; }
      }
      push(TokenKind::kName, start, std::move(name));
      continue;
    }
    switch (c) {
      case '\'':
      case '"': {
        size_t end = query.find(c, pos + 1);
        if (end == std::string_view::npos) {
          return error("unterminated string literal");
        }
        push(TokenKind::kLiteral, start,
             std::string(query.substr(pos + 1, end - pos - 1)));
        pos = end + 1;
        continue;
      }
      case '/':
        if (pos + 1 < query.size() && query[pos + 1] == '/') {
          push(TokenKind::kDoubleSlash, start);
          pos += 2;
        } else {
          push(TokenKind::kSlash, start);
          ++pos;
        }
        continue;
      case '|': push(TokenKind::kPipe, start); ++pos; continue;
      case '+': push(TokenKind::kPlus, start); ++pos; continue;
      case '-': push(TokenKind::kMinus, start); ++pos; continue;
      case '=': push(TokenKind::kEq, start); ++pos; continue;
      case '!':
        if (pos + 1 < query.size() && query[pos + 1] == '=') {
          push(TokenKind::kNe, start);
          pos += 2;
          continue;
        }
        return error("expected '=' after '!'");
      case '<':
        if (pos + 1 < query.size() && query[pos + 1] == '=') {
          push(TokenKind::kLe, start);
          pos += 2;
        } else {
          push(TokenKind::kLt, start);
          ++pos;
        }
        continue;
      case '>':
        if (pos + 1 < query.size() && query[pos + 1] == '=') {
          push(TokenKind::kGe, start);
          pos += 2;
        } else {
          push(TokenKind::kGt, start);
          ++pos;
        }
        continue;
      case '(': push(TokenKind::kLParen, start); ++pos; continue;
      case ')': push(TokenKind::kRParen, start); ++pos; continue;
      case '[': push(TokenKind::kLBracket, start); ++pos; continue;
      case ']': push(TokenKind::kRBracket, start); ++pos; continue;
      case ',': push(TokenKind::kComma, start); ++pos; continue;
      case ':':
        if (pos + 1 < query.size() && query[pos + 1] == ':') {
          push(TokenKind::kDoubleColon, start);
          pos += 2;
          continue;
        }
        return error("namespace-qualified names are not supported");
      case '.':
        if (pos + 1 < query.size() && query[pos + 1] == '.') {
          push(TokenKind::kDotDot, start);
          pos += 2;
        } else {
          push(TokenKind::kDot, start);
          ++pos;
        }
        continue;
      case '*':
        push(operand_before ? TokenKind::kMul : TokenKind::kStar, start);
        ++pos;
        continue;
      case '@': push(TokenKind::kAt, start); ++pos; continue;
      case '$': push(TokenKind::kDollar, start); ++pos; continue;
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
  }
  push(TokenKind::kEof, query.size());
  return tokens;
}

}  // namespace gkx::xpath
