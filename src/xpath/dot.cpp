#include "xpath/dot.hpp"

#include "base/string_util.hpp"

namespace gkx::xpath {
namespace {

std::string EscapeLabel(std::string_view text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

class DotWriter {
 public:
  std::string Run(const Query& query) {
    out_ = "digraph query {\n  node [fontname=\"monospace\"];\n";
    Visit(query.root());
    out_ += "}\n";
    return out_;
  }

 private:
  std::string ExprNode(const Expr& expr) {
    return "e" + std::to_string(expr.id());
  }
  std::string StepNode(const Step& step) { return "s" + std::to_string(step.id); }

  void Emit(const std::string& node, const std::string& label,
            const char* shape) {
    out_ += "  " + node + " [label=\"" + EscapeLabel(label) + "\", shape=" +
            shape + "];\n";
  }

  void Edge(const std::string& from, const std::string& to, bool dashed = false) {
    out_ += "  " + from + " -> " + to + (dashed ? " [style=dashed]" : "") + ";\n";
  }

  void Visit(const Expr& expr) {
    const std::string self = ExprNode(expr);
    switch (expr.kind()) {
      case Expr::Kind::kNumberLiteral:
        Emit(self, FormatXPathNumber(expr.As<NumberLiteral>().value()), "ellipse");
        return;
      case Expr::Kind::kStringLiteral:
        Emit(self, "'" + expr.As<StringLiteral>().value() + "'", "ellipse");
        return;
      case Expr::Kind::kBinary: {
        const auto& binary = expr.As<BinaryExpr>();
        Emit(self, std::string(BinaryOpName(binary.op())), "ellipse");
        Visit(binary.lhs());
        Visit(binary.rhs());
        Edge(self, ExprNode(binary.lhs()));
        Edge(self, ExprNode(binary.rhs()));
        return;
      }
      case Expr::Kind::kNegate: {
        const auto& negate = expr.As<NegateExpr>();
        Emit(self, "unary -", "ellipse");
        Visit(negate.operand());
        Edge(self, ExprNode(negate.operand()));
        return;
      }
      case Expr::Kind::kFunctionCall: {
        const auto& call = expr.As<FunctionCall>();
        Emit(self, std::string(FunctionName(call.function())) + "()", "ellipse");
        for (size_t i = 0; i < call.arg_count(); ++i) {
          Visit(call.arg(i));
          Edge(self, ExprNode(call.arg(i)));
        }
        return;
      }
      case Expr::Kind::kPath: {
        const auto& path = expr.As<PathExpr>();
        Emit(self, path.absolute() ? "/path" : "path", "ellipse");
        std::string previous = self;
        for (size_t i = 0; i < path.step_count(); ++i) {
          const Step& step = path.step(i);
          const std::string node = StepNode(step);
          Emit(node,
               std::string(AxisName(step.axis)) + "::" + step.test.ToString(),
               "box");
          Edge(previous, node);
          for (const ExprPtr& predicate : step.predicates) {
            Visit(*predicate);
            Edge(node, ExprNode(*predicate), /*dashed=*/true);
          }
          previous = node;
        }
        return;
      }
      case Expr::Kind::kUnion: {
        const auto& u = expr.As<UnionExpr>();
        Emit(self, "|", "ellipse");
        for (size_t i = 0; i < u.branch_count(); ++i) {
          Visit(u.branch(i));
          Edge(self, ExprNode(u.branch(i)));
        }
        return;
      }
    }
    GKX_CHECK(false);
  }

  std::string out_;
};

}  // namespace

std::string ToDot(const Query& query) {
  DotWriter writer;
  return writer.Run(query);
}

}  // namespace gkx::xpath
