#include "xpath/printer.hpp"

#include "base/string_util.hpp"
#include "xpath/optimize.hpp"

namespace gkx::xpath {
namespace {

// Natural precedence of an expression node; higher binds tighter.
// or=1 and=2 equality=3 relational=4 additive=5 multiplicative=6 unary=7
// union=8 primary=9.
int Precedence(const Expr& expr) {
  switch (expr.kind()) {
    case Expr::Kind::kBinary:
      switch (expr.As<BinaryExpr>().op()) {
        case BinaryOp::kOr: return 1;
        case BinaryOp::kAnd: return 2;
        case BinaryOp::kEq:
        case BinaryOp::kNe: return 3;
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: return 4;
        case BinaryOp::kAdd:
        case BinaryOp::kSub: return 5;
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod: return 6;
      }
      return 9;
    case Expr::Kind::kNegate:
      return 7;
    case Expr::Kind::kUnion:
      return 8;
    default:
      return 9;
  }
}

void Print(const Expr& expr, std::string* out);

void PrintChild(const Expr& child, int min_precedence, std::string* out) {
  if (Precedence(child) < min_precedence) {
    out->push_back('(');
    Print(child, out);
    out->push_back(')');
  } else {
    Print(child, out);
  }
}

void PrintStep(const Step& step, std::string* out) {
  out->append(AxisName(step.axis));
  out->append("::");
  out->append(step.test.ToString());
  for (const ExprPtr& predicate : step.predicates) {
    out->push_back('[');
    Print(*predicate, out);
    out->push_back(']');
  }
}

void Print(const Expr& expr, std::string* out) {
  switch (expr.kind()) {
    case Expr::Kind::kNumberLiteral:
      out->append(FormatXPathNumber(expr.As<NumberLiteral>().value()));
      return;
    case Expr::Kind::kStringLiteral: {
      const std::string& value = expr.As<StringLiteral>().value();
      // Pick the quote that does not occur in the value (XPath has no
      // escaping inside literals).
      char quote = value.find('\'') == std::string::npos ? '\'' : '"';
      out->push_back(quote);
      out->append(value);
      out->push_back(quote);
      return;
    }
    case Expr::Kind::kBinary: {
      const auto& binary = expr.As<BinaryExpr>();
      const int precedence = Precedence(expr);
      // Left-associative: the left child may have equal precedence, the
      // right child must bind strictly tighter.
      PrintChild(binary.lhs(), precedence, out);
      out->push_back(' ');
      out->append(BinaryOpName(binary.op()));
      out->push_back(' ');
      PrintChild(binary.rhs(), precedence + 1, out);
      return;
    }
    case Expr::Kind::kNegate:
      out->push_back('-');
      PrintChild(expr.As<NegateExpr>().operand(), 7, out);
      return;
    case Expr::Kind::kFunctionCall: {
      const auto& call = expr.As<FunctionCall>();
      out->append(FunctionName(call.function()));
      out->push_back('(');
      for (size_t i = 0; i < call.arg_count(); ++i) {
        if (i > 0) out->append(", ");
        Print(call.arg(i), out);
      }
      out->push_back(')');
      return;
    }
    case Expr::Kind::kPath: {
      const auto& path = expr.As<PathExpr>();
      if (path.absolute()) out->push_back('/');
      for (size_t i = 0; i < path.step_count(); ++i) {
        if (i > 0) out->push_back('/');
        PrintStep(path.step(i), out);
      }
      return;
    }
    case Expr::Kind::kUnion: {
      const auto& u = expr.As<UnionExpr>();
      for (size_t i = 0; i < u.branch_count(); ++i) {
        if (i > 0) out->append(" | ");
        PrintChild(u.branch(i), 9, out);  // parenthesize nested unions
      }
      return;
    }
  }
  GKX_CHECK(false);
}

}  // namespace

std::string ToXPathString(const Expr& expr) {
  std::string out;
  Print(expr, &out);
  return out;
}

std::string ToXPathString(const Query& query) { return ToXPathString(query.root()); }

std::string ToXPathString(const Step& step) {
  std::string out;
  PrintStep(step, &out);
  return out;
}

std::string CanonicalXPathString(const Query& query) {
  return ToXPathString(Optimize(query));
}

}  // namespace gkx::xpath
