#include "xpath/build.hpp"

namespace gkx::xpath::build {

ExprPtr Number(double value) { return std::make_unique<NumberLiteral>(value); }

ExprPtr Str(std::string value) {
  return std::make_unique<StringLiteral>(std::move(value));
}

ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr And(ExprPtr lhs, ExprPtr rhs) {
  return Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
}

ExprPtr Or(ExprPtr lhs, ExprPtr rhs) {
  return Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
}

ExprPtr Eq(ExprPtr lhs, ExprPtr rhs) {
  return Binary(BinaryOp::kEq, std::move(lhs), std::move(rhs));
}

ExprPtr Gt(ExprPtr lhs, ExprPtr rhs) {
  return Binary(BinaryOp::kGt, std::move(lhs), std::move(rhs));
}

ExprPtr Negate(ExprPtr operand) {
  return std::make_unique<NegateExpr>(std::move(operand));
}

ExprPtr Call(Function function, std::vector<ExprPtr> args) {
  return std::make_unique<FunctionCall>(function, std::move(args));
}

ExprPtr Not(ExprPtr arg) {
  std::vector<ExprPtr> args;
  args.push_back(std::move(arg));
  return Call(Function::kNot, std::move(args));
}

ExprPtr Position() { return Call(Function::kPosition); }
ExprPtr Last() { return Call(Function::kLast); }

Step MakeStep(Axis axis, NodeTest test, std::vector<ExprPtr> predicates) {
  Step step;
  step.axis = axis;
  step.test = std::move(test);
  step.predicates = std::move(predicates);
  return step;
}

Step NamedStep(Axis axis, std::string_view name, std::vector<ExprPtr> predicates) {
  return MakeStep(axis, NodeTest::Name(name), std::move(predicates));
}

Step AnyStep(Axis axis, std::vector<ExprPtr> predicates) {
  return MakeStep(axis, NodeTest::Any(), std::move(predicates));
}

ExprPtr Path(bool absolute, std::vector<Step> steps) {
  return std::make_unique<PathExpr>(absolute, std::move(steps));
}

ExprPtr StepPath(Step step) {
  std::vector<Step> steps;
  steps.push_back(std::move(step));
  return Path(/*absolute=*/false, std::move(steps));
}

ExprPtr LabelTest(std::string_view label) {
  return StepPath(NamedStep(Axis::kSelf, label));
}

ExprPtr Union(std::vector<ExprPtr> branches) {
  return std::make_unique<UnionExpr>(std::move(branches));
}

Step CloneStep(const Step& step) {
  Step out;
  out.axis = step.axis;
  out.test = step.test;
  out.predicates.reserve(step.predicates.size());
  for (const ExprPtr& predicate : step.predicates) {
    out.predicates.push_back(CloneExpr(*predicate));
  }
  return out;
}

ExprPtr CloneExpr(const Expr& expr) {
  switch (expr.kind()) {
    case Expr::Kind::kNumberLiteral:
      return Number(expr.As<NumberLiteral>().value());
    case Expr::Kind::kStringLiteral:
      return Str(expr.As<StringLiteral>().value());
    case Expr::Kind::kBinary: {
      const auto& binary = expr.As<BinaryExpr>();
      return Binary(binary.op(), CloneExpr(binary.lhs()), CloneExpr(binary.rhs()));
    }
    case Expr::Kind::kNegate:
      return Negate(CloneExpr(expr.As<NegateExpr>().operand()));
    case Expr::Kind::kFunctionCall: {
      const auto& call = expr.As<FunctionCall>();
      std::vector<ExprPtr> args;
      args.reserve(call.arg_count());
      for (size_t i = 0; i < call.arg_count(); ++i) {
        args.push_back(CloneExpr(call.arg(i)));
      }
      return Call(call.function(), std::move(args));
    }
    case Expr::Kind::kPath: {
      const auto& path = expr.As<PathExpr>();
      std::vector<Step> steps;
      steps.reserve(path.step_count());
      for (size_t i = 0; i < path.step_count(); ++i) {
        steps.push_back(CloneStep(path.step(i)));
      }
      return Path(path.absolute(), std::move(steps));
    }
    case Expr::Kind::kUnion: {
      const auto& u = expr.As<UnionExpr>();
      std::vector<ExprPtr> branches;
      branches.reserve(u.branch_count());
      for (size_t i = 0; i < u.branch_count(); ++i) {
        branches.push_back(CloneExpr(u.branch(i)));
      }
      return Union(std::move(branches));
    }
  }
  GKX_CHECK(false);
  return nullptr;
}

}  // namespace gkx::xpath::build
