// Query-to-query rewrites used by the paper:
//
// * NormalizeIteratedPredicates — Remark 5.2: χ::t[e1]...[ek] is equivalent
//   to χ::t[e1 and ... and ek] as long as the folded predicates do not use
//   position()/last(). Folds every step where that side condition holds (the
//   first predicate may be positional; later ones must not be, since folding
//   drops the re-ranking).
//
// * PushNegationsDown — the first transformation step in the proof of
//   Theorem 5.9: apply de Morgan's laws so that not() survives only directly
//   in front of location paths (and in front of relational operators whose
//   operands are not both numbers, cf. Theorem 6.3); number-number
//   comparisons are negated by flipping the operator.

#ifndef GKX_XPATH_TRANSFORM_HPP_
#define GKX_XPATH_TRANSFORM_HPP_

#include "xpath/ast.hpp"

namespace gkx::xpath {

/// Folds iterated predicates where semantically safe; returns a new Query.
Query NormalizeIteratedPredicates(const Query& query);

/// Pushes not() down by de Morgan; returns a new Query equivalent to the
/// input. After the rewrite, every not() wraps a location path, a union, or
/// a non-numeric comparison.
Query PushNegationsDown(const Query& query);

}  // namespace gkx::xpath

#endif  // GKX_XPATH_TRANSFORM_HPP_
