#include "xpath/transform.hpp"

#include <utility>
#include <vector>

#include "xpath/analysis.hpp"
#include "xpath/build.hpp"

namespace gkx::xpath {
namespace {

// ---------------------------------------------------------------------------
// NormalizeIteratedPredicates
// ---------------------------------------------------------------------------

class Normalizer {
 public:
  explicit Normalizer(const QueryAnalysis& analysis) : analysis_(analysis) {}

  ExprPtr Rewrite(const Expr& expr) {
    switch (expr.kind()) {
      case Expr::Kind::kNumberLiteral:
      case Expr::Kind::kStringLiteral:
        return build::CloneExpr(expr);
      case Expr::Kind::kBinary: {
        const auto& binary = expr.As<BinaryExpr>();
        return build::Binary(binary.op(), Rewrite(binary.lhs()),
                             Rewrite(binary.rhs()));
      }
      case Expr::Kind::kNegate:
        return build::Negate(Rewrite(expr.As<NegateExpr>().operand()));
      case Expr::Kind::kFunctionCall: {
        const auto& call = expr.As<FunctionCall>();
        std::vector<ExprPtr> args;
        args.reserve(call.arg_count());
        for (size_t i = 0; i < call.arg_count(); ++i) {
          args.push_back(Rewrite(call.arg(i)));
        }
        return build::Call(call.function(), std::move(args));
      }
      case Expr::Kind::kPath: {
        const auto& path = expr.As<PathExpr>();
        std::vector<Step> steps;
        steps.reserve(path.step_count());
        for (size_t i = 0; i < path.step_count(); ++i) {
          steps.push_back(RewriteStep(path.step(i)));
        }
        return build::Path(path.absolute(), std::move(steps));
      }
      case Expr::Kind::kUnion: {
        const auto& u = expr.As<UnionExpr>();
        std::vector<ExprPtr> branches;
        branches.reserve(u.branch_count());
        for (size_t i = 0; i < u.branch_count(); ++i) {
          branches.push_back(Rewrite(u.branch(i)));
        }
        return build::Union(std::move(branches));
      }
    }
    GKX_CHECK(false);
    return nullptr;
  }

 private:
  Step RewriteStep(const Step& step) {
    std::vector<ExprPtr> predicates;
    predicates.reserve(step.predicates.size());
    for (const ExprPtr& predicate : step.predicates) {
      predicates.push_back(Rewrite(*predicate));
    }
    // Folding [e1][e2]...[ek] into [e1 and ... and ek] is sound iff e2..ek do
    // not observe the re-ranked positions, i.e. use neither position() nor
    // last() (e1 may be positional — it sees the original ranking either
    // way). Numeric-valued predicates are implicit position tests ([2] means
    // [position()=2]) and would change meaning under the boolean coercion of
    // 'and', so they block folding wherever they occur.
    bool foldable = predicates.size() >= 2;
    for (size_t i = 0; i < step.predicates.size() && foldable; ++i) {
      const Expr& original = *step.predicates[i];
      const ExprTraits& traits = analysis_.traits(original);
      if (StaticType(original) == ValueType::kNumber) foldable = false;
      if ((traits.uses_position || traits.uses_last) && i > 0) foldable = false;
    }
    if (!foldable) {
      return build::MakeStep(step.axis, step.test, std::move(predicates));
    }
    ExprPtr folded = std::move(predicates[0]);
    for (size_t i = 1; i < predicates.size(); ++i) {
      folded = build::And(std::move(folded), std::move(predicates[i]));
    }
    std::vector<ExprPtr> single;
    single.push_back(std::move(folded));
    return build::MakeStep(step.axis, step.test, std::move(single));
  }

  const QueryAnalysis& analysis_;
};

// ---------------------------------------------------------------------------
// PushNegationsDown
// ---------------------------------------------------------------------------

BinaryOp FlipRelop(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return BinaryOp::kNe;
    case BinaryOp::kNe: return BinaryOp::kEq;
    case BinaryOp::kLt: return BinaryOp::kGe;
    case BinaryOp::kLe: return BinaryOp::kGt;
    case BinaryOp::kGt: return BinaryOp::kLe;
    case BinaryOp::kGe: return BinaryOp::kLt;
    default:
      GKX_CHECK(false);
      return op;
  }
}

ExprPtr RewriteNeg(const Expr& expr, bool negated);

/// Wraps an expression as a boolean (paths get boolean(), booleans pass
/// through) — needed when a double negation cancels over a node-set operand.
ExprPtr AsBoolean(ExprPtr expr) {
  if (StaticType(*expr) == ValueType::kBoolean) return expr;
  std::vector<ExprPtr> args;
  args.push_back(std::move(expr));
  return build::Call(Function::kBoolean, std::move(args));
}

ExprPtr RewriteNeg(const Expr& expr, bool negated) {
  if (!negated) {
    switch (expr.kind()) {
      case Expr::Kind::kFunctionCall: {
        const auto& call = expr.As<FunctionCall>();
        if (call.function() == Function::kNot && call.arg_count() == 1) {
          return RewriteNeg(call.arg(0), /*negated=*/true);
        }
        std::vector<ExprPtr> args;
        args.reserve(call.arg_count());
        for (size_t i = 0; i < call.arg_count(); ++i) {
          args.push_back(RewriteNeg(call.arg(i), false));
        }
        return build::Call(call.function(), std::move(args));
      }
      case Expr::Kind::kBinary: {
        const auto& binary = expr.As<BinaryExpr>();
        return build::Binary(binary.op(), RewriteNeg(binary.lhs(), false),
                             RewriteNeg(binary.rhs(), false));
      }
      case Expr::Kind::kNegate:
        return build::Negate(RewriteNeg(expr.As<NegateExpr>().operand(), false));
      case Expr::Kind::kPath: {
        const auto& path = expr.As<PathExpr>();
        std::vector<Step> steps;
        steps.reserve(path.step_count());
        for (size_t i = 0; i < path.step_count(); ++i) {
          const Step& step = path.step(i);
          std::vector<ExprPtr> predicates;
          predicates.reserve(step.predicates.size());
          for (const ExprPtr& predicate : step.predicates) {
            predicates.push_back(RewriteNeg(*predicate, false));
          }
          steps.push_back(
              build::MakeStep(step.axis, step.test, std::move(predicates)));
        }
        return build::Path(path.absolute(), std::move(steps));
      }
      case Expr::Kind::kUnion: {
        const auto& u = expr.As<UnionExpr>();
        std::vector<ExprPtr> branches;
        branches.reserve(u.branch_count());
        for (size_t i = 0; i < u.branch_count(); ++i) {
          branches.push_back(RewriteNeg(u.branch(i), false));
        }
        return build::Union(std::move(branches));
      }
      default:
        return build::CloneExpr(expr);
    }
  }

  // Negated context.
  switch (expr.kind()) {
    case Expr::Kind::kBinary: {
      const auto& binary = expr.As<BinaryExpr>();
      if (binary.op() == BinaryOp::kAnd) {
        return build::Or(RewriteNeg(binary.lhs(), true),
                         RewriteNeg(binary.rhs(), true));
      }
      if (binary.op() == BinaryOp::kOr) {
        return build::And(RewriteNeg(binary.lhs(), true),
                          RewriteNeg(binary.rhs(), true));
      }
      if (IsRelationalOp(binary.op()) &&
          StaticType(binary.lhs()) == ValueType::kNumber &&
          StaticType(binary.rhs()) == ValueType::kNumber) {
        // Number-number comparison: negate by flipping the operator
        // (Theorem 5.9: "= is replaced by !=, < is replaced by >=, etc.").
        return build::Binary(FlipRelop(binary.op()),
                             RewriteNeg(binary.lhs(), false),
                             RewriteNeg(binary.rhs(), false));
      }
      // Mixed-type comparison: negation cannot be pushed through (the
      // existential node-set semantics breaks the flip); keep not(...)
      // (handled by a dom-loop, Theorem 6.3).
      return build::Not(RewriteNeg(expr, false));
    }
    case Expr::Kind::kFunctionCall: {
      const auto& call = expr.As<FunctionCall>();
      if (call.function() == Function::kNot && call.arg_count() == 1) {
        // not(not(e)) == boolean(e).
        return AsBoolean(RewriteNeg(call.arg(0), false));
      }
      if (call.function() == Function::kTrue) return build::Call(Function::kFalse);
      if (call.function() == Function::kFalse) return build::Call(Function::kTrue);
      if (call.function() == Function::kBoolean && call.arg_count() == 1) {
        return RewriteNeg(call.arg(0), true);
      }
      return build::Not(RewriteNeg(expr, false));
    }
    default:
      // not(π), not(number), not(literal): keep the not() in front.
      return build::Not(RewriteNeg(expr, false));
  }
}

}  // namespace

Query NormalizeIteratedPredicates(const Query& query) {
  QueryAnalysis analysis = Analyze(query);
  Normalizer normalizer(analysis);
  return Query::Create(normalizer.Rewrite(query.root()));
}

Query PushNegationsDown(const Query& query) {
  return Query::Create(RewriteNeg(query.root(), /*negated=*/false));
}

}  // namespace gkx::xpath
