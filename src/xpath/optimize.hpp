// Semantics-preserving query simplification — the standard rewrite layer of
// an XPath engine. Everything here is justified by the axis algebra the
// metamorphic test suite checks:
//
//   * step fusion:   descendant-or-self::node()/child::t[P]
//                      -> descendant::t[P]          (the '//' idiom)
//                    descendant-or-self::node()/descendant::t[P]
//                      -> descendant::t[P]
//                    self::node()                   -> dropped (when another
//                                                      step remains)
//   * trivial predicates dropped: [true()], [position() >= 1],
//                    [position() <= last()]
//   * empty-union collapse: single-branch unions unwrapped.
//
// Fusions are suppressed where positions are observable (a predicate on the
// fused step that uses position()/last() or a numeric predicate counts
// against the *merged* candidate list, which would change meaning).

#ifndef GKX_XPATH_OPTIMIZE_HPP_
#define GKX_XPATH_OPTIMIZE_HPP_

#include "xpath/ast.hpp"

namespace gkx::xpath {

struct OptimizeStats {
  int fused_steps = 0;
  int dropped_self_steps = 0;
  int dropped_predicates = 0;
  int unwrapped_unions = 0;

  int Total() const {
    return fused_steps + dropped_self_steps + dropped_predicates +
           unwrapped_unions;
  }
};

/// Returns an equivalent, usually smaller query. `stats` (optional)
/// receives rewrite counts.
Query Optimize(const Query& query, OptimizeStats* stats = nullptr);

}  // namespace gkx::xpath

#endif  // GKX_XPATH_OPTIMIZE_HPP_
