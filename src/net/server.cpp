#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace gkx::net {

namespace {

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Status Errno(const std::string& what) {
  return InternalError("net: " + what + ": " + std::strerror(errno));
}

}  // namespace

Server::Server(service::ShardedQueryService* service, Options options)
    : service_(service), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InvalidArgumentError("net: bad host " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = Errno("bind " + options_.host + ":" +
                          std::to_string(options_.port));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    Status status = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    Status status = Errno("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(bound.sin_port);

  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void Server::Stop() {
  std::vector<std::unique_ptr<Connection>> connections;
  int listen_fd = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    connections.swap(connections_);
    listen_fd = listen_fd_;
  }
  if (listen_fd >= 0) {
    // shutdown() pops the accept loop out of accept(); close alone does not
    // reliably wake a blocked accept on Linux.
    ::shutdown(listen_fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd >= 0) ::close(listen_fd);

  for (auto& conn : connections) {
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (auto& conn : connections) {
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }
}

void Server::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or unrecoverable) — Stop() handles it
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    SetNoDelay(fd);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->thread = std::thread([this, fd] { ServeConnection(fd); });
    connections_.push_back(std::move(conn));
  }
}

void Server::ServeConnection(int fd) {
  for (;;) {
    bool clean_eof = false;
    Result<std::string> payload = ReadFrame(fd, &clean_eof);
    if (!payload.ok() || clean_eof) break;

    Message response;
    Result<Message> request = DecodeMessage(*payload);
    if (!request.ok()) {
      // A malformed frame still gets a framed answer — the client's read
      // stays in sync even when its write was garbage.
      response.type = MsgType::kStatusReply;
      response.status = request.status();
    } else {
      response = Dispatch(*request);
    }
    if (!WriteFrame(fd, EncodeMessage(response)).ok()) break;
  }
  // The fd is closed by Stop() (which owns the Connection record); closing
  // here as well would race a concurrent shutdown. Mark it done instead.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& conn : connections_) {
    if (conn->fd == fd) {
      ::close(fd);
      conn->fd = -1;
      break;
    }
  }
}

Message Server::Dispatch(const Message& request) {
  Message response;
  switch (request.type) {
    case MsgType::kPing:
      response.type = MsgType::kPong;
      return response;
    case MsgType::kSubmit: {
      response.type = MsgType::kAnswer;
      WireAnswer wire;
      if (request.requests.size() != 1) {
        wire.status = InvalidArgumentError("net: submit needs one request");
      } else {
        Result<service::ShardedQueryService::Answer> result =
            service_->Submit(request.requests[0].doc_key,
                             request.requests[0].query);
        if (result.ok()) {
          wire.answer = std::move(*result);
        } else {
          wire.status = result.status();
        }
      }
      response.answers.push_back(std::move(wire));
      return response;
    }
    case MsgType::kSubmitBatch: {
      response.type = MsgType::kAnswerBatch;
      std::vector<service::ShardedQueryService::Request> batch;
      batch.reserve(request.requests.size());
      for (const WireRequest& req : request.requests) {
        batch.push_back({req.doc_key, req.query});
      }
      std::vector<Result<service::ShardedQueryService::Answer>> results =
          service_->SubmitBatch(batch);
      response.answers.reserve(results.size());
      for (auto& result : results) {
        WireAnswer wire;
        if (result.ok()) {
          wire.answer = std::move(*result);
        } else {
          wire.status = result.status();
        }
        response.answers.push_back(std::move(wire));
      }
      return response;
    }
    case MsgType::kRegisterXml:
      response.type = MsgType::kStatusReply;
      response.status =
          service_->RegisterXml(request.doc_key, request.text);
      return response;
    case MsgType::kUpdate:
      response.type = MsgType::kStatusReply;
      response.status = service_->UpdateDocument(request.doc_key, request.edit);
      return response;
    case MsgType::kRemove:
      response.type = MsgType::kStatusReply;
      response.status =
          service_->RemoveDocument(request.doc_key)
              ? Status::Ok()
              : InvalidArgumentError("net: unknown document key " +
                                     request.doc_key);
      return response;
    case MsgType::kStats:
      response.type = MsgType::kStatsReply;
      response.text = service_->ExportStats(
          request.stats_format == 1 ? service::StatsFormat::kJson
                                    : service::StatsFormat::kText);
      return response;
    default:
      response.type = MsgType::kStatusReply;
      response.status = InvalidArgumentError(
          "net: unexpected message type " +
          std::to_string(static_cast<int>(request.type)));
      return response;
  }
}

}  // namespace gkx::net
