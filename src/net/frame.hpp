// gkx::net — the minimal length-prefixed binary wire protocol that lets a
// client drive a (sharded) QueryService across a process boundary. The
// framing reuses the WAL's discipline (src/wal/record.hpp):
//
//   frame   := [u32 payload_size][u32 crc32(payload)][payload bytes]
//   payload := [u8 version][u8 msg type][body]
//
// all integers little-endian, CRC-32 IEEE (wal::Crc32). The version byte is
// first in every payload so a future format can be detected before any body
// parsing; decoders reject unknown versions and unknown types outright, and
// every length is bounds-checked (wal::wire::Reader) — a truncated or
// bit-flipped frame fails the CRC or the reader, never reads past a buffer.
// The exact bytes are pinned by golden tests (net_codec_test.cpp): changing
// any of this is a protocol break and must bump kWireVersion.
//
// Answer values round-trip exactly (numbers as raw IEEE-754 bits, node-sets
// as id lists), so a wire answer is byte-identical — DebugString and all —
// to the in-process answer it serializes. The one lossy field is
// FragmentReport::notes (human-readable classifier prose), which
// deliberately stays off the wire.

#ifndef GKX_NET_FRAME_HPP_
#define GKX_NET_FRAME_HPP_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.hpp"
#include "eval/engine.hpp"
#include "xml/edit.hpp"

namespace gkx::net {

inline constexpr uint8_t kWireVersion = 1;

/// Frames larger than this are rejected at read time — a flipped size bit
/// must not trigger a multi-GB allocation.
inline constexpr uint64_t kMaxPayloadBytes = uint64_t{1} << 30;

enum class MsgType : uint8_t {
  // Requests.
  kPing = 1,
  kSubmit = 2,       // one WireRequest
  kSubmitBatch = 3,  // many WireRequests, answered positionally
  kRegisterXml = 4,  // doc_key + xml text
  kUpdate = 5,       // doc_key + SubtreeEdit (subtree as arena snapshot)
  kRemove = 6,       // doc_key
  kStats = 7,        // stats_format (0 text, 1 json)
  // Responses (high bit of the low nibble set — disjoint from requests).
  kPong = 65,
  kAnswer = 66,       // one WireAnswer
  kAnswerBatch = 67,  // one WireAnswer per request, in request order
  kStatusReply = 68,  // status of a mutation
  kStatsReply = 69,   // rendered stats document in `text`
};

struct WireRequest {
  std::string doc_key;
  std::string query;
};

/// One per-request outcome: a non-OK status (the answer is then empty) or
/// the full Engine answer.
struct WireAnswer {
  Status status;
  eval::Engine::Answer answer;
};

/// The decoded form of any message; which fields are meaningful depends on
/// `type` (see the per-type comments in MsgType).
struct Message {
  MsgType type = MsgType::kPing;
  std::vector<WireRequest> requests;  // kSubmit (exactly one) / kSubmitBatch
  std::string doc_key;                // kRegisterXml / kUpdate / kRemove
  std::string text;                   // kRegisterXml: xml; kStatsReply: body
  xml::SubtreeEdit edit;              // kUpdate
  uint8_t stats_format = 0;           // kStats: 0 text, 1 json
  Status status;                      // kStatusReply
  std::vector<WireAnswer> answers;    // kAnswer (exactly one) / kAnswerBatch
};

/// Serializes a message into a payload (frame header NOT included).
std::string EncodeMessage(const Message& message);

/// Parses a payload back. Rejects unknown versions/types, truncated bodies,
/// and trailing bytes.
Result<Message> DecodeMessage(std::string_view payload);

/// Appends [size][crc][payload] to `*out` (wal::AppendFrame).
void AppendFrame(std::string_view payload, std::string* out);

// ------------------------------------------------------- blocking stream IO

/// Writes one frame to a connected socket/fd, looping over partial writes.
Status WriteFrame(int fd, std::string_view payload);

/// Reads one frame, looping over partial reads, and verifies the CRC. A
/// clean EOF before the first header byte sets `*clean_eof` and returns an
/// empty payload; EOF mid-frame, a CRC mismatch, or an oversized size field
/// is an error.
Result<std::string> ReadFrame(int fd, bool* clean_eof);

}  // namespace gkx::net

#endif  // GKX_NET_FRAME_HPP_
