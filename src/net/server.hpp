// Blocking TCP front-end for a ShardedQueryService: one accept thread plus
// one thread per connection, each running a simple read-frame → dispatch →
// write-frame loop over the gkx::net codec (frame.hpp). The server owns no
// query state — every request is answered by the router it wraps, so the
// wire tier adds framing and sockets, nothing else.
//
// Lifecycle: Start() binds and listens (port 0 picks an ephemeral port,
// readable via port() afterwards); Stop() shuts the listener and every live
// connection down and joins all threads. The destructor calls Stop().

#ifndef GKX_NET_SERVER_HPP_
#define GKX_NET_SERVER_HPP_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/status.hpp"
#include "net/frame.hpp"
#include "service/sharded_service.hpp"

namespace gkx::net {

class Server {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 = ephemeral; the bound port is available via port() after Start().
    uint16_t port = 0;
    int backlog = 16;
  };

  /// The service must outlive the server.
  Server(service::ShardedQueryService* service, Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the accept loop. Not restartable.
  Status Start();
  /// Stops accepting, severs every connection, joins all threads. Safe to
  /// call more than once.
  void Stop();

  uint16_t port() const { return port_; }

  /// Pure request → response mapping; transport-independent so the protocol
  /// semantics are testable without sockets (net_codec_test.cpp).
  Message Dispatch(const Message& request);

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
  };

  void AcceptLoop();
  void ServeConnection(int fd);

  service::ShardedQueryService* service_;
  Options options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;

  std::mutex mu_;
  bool stopping_ = false;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace gkx::net

#endif  // GKX_NET_SERVER_HPP_
