#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace gkx::net {

Status Client::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return FailedPreconditionError("net: already connected");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("net: socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError("net: bad host " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = InternalError("net: connect " + host + ":" +
                                  std::to_string(port) + ": " +
                                  std::strerror(errno));
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::Ok();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Message> Client::RoundTrip(const Message& request, MsgType expected) {
  if (fd_ < 0) return FailedPreconditionError("net: not connected");
  Status write = WriteFrame(fd_, EncodeMessage(request));
  if (!write.ok()) {
    Close();
    return write;
  }
  bool clean_eof = false;
  Result<std::string> payload = ReadFrame(fd_, &clean_eof);
  if (!payload.ok() || clean_eof) {
    Close();
    if (!payload.ok()) return payload.status();
    return InternalError("net: server closed the connection");
  }
  Result<Message> response = DecodeMessage(*payload);
  if (!response.ok()) {
    Close();
    return response.status();
  }
  // A kStatusReply in place of the expected type carries the server-side
  // error for this request (e.g. a mutation status, or a decode rejection).
  if (response->type != expected) {
    if (response->type == MsgType::kStatusReply && !response->status.ok()) {
      return response->status;
    }
    Close();
    return InternalError("net: unexpected response type " +
                         std::to_string(static_cast<int>(response->type)));
  }
  return response;
}

Status Client::Ping() {
  Message request;
  request.type = MsgType::kPing;
  return RoundTrip(request, MsgType::kPong).status();
}

Result<Client::Answer> Client::Submit(const std::string& doc_key,
                                      const std::string& query_text) {
  Message request;
  request.type = MsgType::kSubmit;
  request.requests.push_back({doc_key, query_text});
  Result<Message> response = RoundTrip(request, MsgType::kAnswer);
  if (!response.ok()) return response.status();
  if (response->answers.size() != 1) {
    Close();
    return InternalError("net: malformed answer");
  }
  WireAnswer& wire = response->answers[0];
  if (!wire.status.ok()) return wire.status;
  return std::move(wire.answer);
}

std::vector<Result<Client::Answer>> Client::SubmitBatch(
    const std::vector<WireRequest>& requests) {
  Message request;
  request.type = MsgType::kSubmitBatch;
  request.requests = requests;
  Result<Message> response = RoundTrip(request, MsgType::kAnswerBatch);
  if (response.ok() && response->answers.size() != requests.size()) {
    Close();
    response = InternalError("net: answer count mismatch");
  }
  std::vector<Result<Answer>> out;
  out.reserve(requests.size());
  if (!response.ok()) {
    for (size_t i = 0; i < requests.size(); ++i) {
      out.emplace_back(response.status());
    }
    return out;
  }
  for (WireAnswer& wire : response->answers) {
    if (wire.status.ok()) {
      out.emplace_back(std::move(wire.answer));
    } else {
      out.emplace_back(wire.status);
    }
  }
  return out;
}

Status Client::RegisterXml(const std::string& doc_key,
                           const std::string& xml) {
  Message request;
  request.type = MsgType::kRegisterXml;
  request.doc_key = doc_key;
  request.text = xml;
  Result<Message> response = RoundTrip(request, MsgType::kStatusReply);
  if (!response.ok()) return response.status();
  return response->status;
}

Status Client::UpdateDocument(const std::string& doc_key,
                              const xml::SubtreeEdit& edit) {
  Message request;
  request.type = MsgType::kUpdate;
  request.doc_key = doc_key;
  request.edit = edit;
  Result<Message> response = RoundTrip(request, MsgType::kStatusReply);
  if (!response.ok()) return response.status();
  return response->status;
}

Status Client::RemoveDocument(const std::string& doc_key) {
  Message request;
  request.type = MsgType::kRemove;
  request.doc_key = doc_key;
  Result<Message> response = RoundTrip(request, MsgType::kStatusReply);
  if (!response.ok()) return response.status();
  return response->status;
}

Result<std::string> Client::ExportStats(service::StatsFormat format) {
  Message request;
  request.type = MsgType::kStats;
  request.stats_format = format == service::StatsFormat::kJson ? 1 : 0;
  Result<Message> response = RoundTrip(request, MsgType::kStatsReply);
  if (!response.ok()) return response.status();
  return std::move(response->text);
}

}  // namespace gkx::net
