#include "net/frame.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "wal/record.hpp"
#include "xml/snapshot.hpp"

namespace gkx::net {

namespace {

using wal::wire::Append;
using wal::wire::AppendString;
using wal::wire::Reader;

Status Corrupt(const std::string& what) {
  return InvalidArgumentError("net: " + what);
}

// ----------------------------------------------------------------- status

// [u8 code][string message]; code 0 is OK (empty message). The numeric
// mapping is pinned here, independent of the StatusCode enum order.
uint8_t StatusCodeByte(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kInvalidArgument: return 1;
    case StatusCode::kUnsupported: return 2;
    case StatusCode::kOutOfRange: return 3;
    case StatusCode::kFailedPrecondition: return 4;
    case StatusCode::kInternal: return 5;
  }
  return 5;
}

bool StatusCodeFromByte(uint8_t byte, StatusCode* out) {
  switch (byte) {
    case 0: *out = StatusCode::kOk; return true;
    case 1: *out = StatusCode::kInvalidArgument; return true;
    case 2: *out = StatusCode::kUnsupported; return true;
    case 3: *out = StatusCode::kOutOfRange; return true;
    case 4: *out = StatusCode::kFailedPrecondition; return true;
    case 5: *out = StatusCode::kInternal; return true;
  }
  return false;
}

void EncodeStatus(const Status& status, std::string* out) {
  Append<uint8_t>(StatusCodeByte(status.code()), out);
  AppendString(status.message(), out);
}

bool DecodeStatus(Reader* reader, Status* out) {
  uint8_t code_byte = 0;
  std::string message;
  StatusCode code;
  if (!reader->Read(&code_byte) || !reader->ReadString(&message) ||
      !StatusCodeFromByte(code_byte, &code)) {
    return false;
  }
  *out = code == StatusCode::kOk ? Status::Ok()
                                 : Status(code, std::move(message));
  return true;
}

// ------------------------------------------------------------------ value

// [u8 kind] + kind-specific payload. Kind bytes pinned for the wire.
constexpr uint8_t kValueBoolean = 0;
constexpr uint8_t kValueNumber = 1;
constexpr uint8_t kValueString = 2;
constexpr uint8_t kValueNodeSet = 3;

void EncodeValue(const eval::Value& value, std::string* out) {
  switch (value.type()) {
    case xpath::ValueType::kBoolean:
      Append<uint8_t>(kValueBoolean, out);
      Append<uint8_t>(value.boolean() ? 1 : 0, out);
      return;
    case xpath::ValueType::kNumber: {
      // Raw IEEE-754 bits: NaN payloads and signed zeros survive the trip.
      Append<uint8_t>(kValueNumber, out);
      uint64_t bits = 0;
      const double number = value.number();
      std::memcpy(&bits, &number, sizeof(bits));
      Append<uint64_t>(bits, out);
      return;
    }
    case xpath::ValueType::kString:
      Append<uint8_t>(kValueString, out);
      AppendString(value.string(), out);
      return;
    case xpath::ValueType::kNodeSet: {
      Append<uint8_t>(kValueNodeSet, out);
      const eval::NodeSet& nodes = value.nodes();
      Append<uint32_t>(static_cast<uint32_t>(nodes.size()), out);
      // One bulk append of the contiguous id array. Same little-endian
      // host-representation assumption as Append<int32_t> per element,
      // without paying a length/growth check per id.
      out->append(reinterpret_cast<const char*>(nodes.data()),
                  nodes.size() * sizeof(int32_t));
      return;
    }
  }
}

Result<eval::Value> DecodeValue(Reader* reader) {
  uint8_t kind = 0;
  if (!reader->Read(&kind)) return Corrupt("truncated value");
  switch (kind) {
    case kValueBoolean: {
      uint8_t b = 0;
      if (!reader->Read(&b)) return Corrupt("truncated boolean value");
      return eval::Value::Boolean(b != 0);
    }
    case kValueNumber: {
      uint64_t bits = 0;
      if (!reader->Read(&bits)) return Corrupt("truncated number value");
      double number = 0.0;
      std::memcpy(&number, &bits, sizeof(number));
      return eval::Value::Number(number);
    }
    case kValueString: {
      std::string s;
      if (!reader->ReadString(&s)) return Corrupt("truncated string value");
      return eval::Value::String(std::move(s));
    }
    case kValueNodeSet: {
      uint32_t count = 0;
      if (!reader->Read(&count)) return Corrupt("truncated node-set value");
      std::string_view raw;
      if (!reader->ReadBlob(static_cast<uint64_t>(count) * sizeof(int32_t),
                            &raw)) {
        return Corrupt("truncated node-set value");
      }
      eval::NodeSet nodes(count);
      std::memcpy(nodes.data(), raw.data(), raw.size());
      return eval::Value::Nodes(std::move(nodes));
    }
  }
  return Corrupt("unknown value kind");
}

// --------------------------------------------------------------- fragment

// [u8 membership flags][u8 smallest]. `notes` stays off the wire.
constexpr uint8_t kFragPf = 1 << 0;
constexpr uint8_t kFragPositiveCore = 1 << 1;
constexpr uint8_t kFragCore = 1 << 2;
constexpr uint8_t kFragPwf = 1 << 3;
constexpr uint8_t kFragWf = 1 << 4;
constexpr uint8_t kFragPxpath = 1 << 5;

uint8_t FragmentByte(xpath::Fragment fragment) {
  switch (fragment) {
    case xpath::Fragment::kPF: return 0;
    case xpath::Fragment::kPositiveCore: return 1;
    case xpath::Fragment::kCore: return 2;
    case xpath::Fragment::kPWF: return 3;
    case xpath::Fragment::kWF: return 4;
    case xpath::Fragment::kPXPath: return 5;
    case xpath::Fragment::kFullXPath: return 6;
  }
  return 6;
}

bool FragmentFromByte(uint8_t byte, xpath::Fragment* out) {
  switch (byte) {
    case 0: *out = xpath::Fragment::kPF; return true;
    case 1: *out = xpath::Fragment::kPositiveCore; return true;
    case 2: *out = xpath::Fragment::kCore; return true;
    case 3: *out = xpath::Fragment::kPWF; return true;
    case 4: *out = xpath::Fragment::kWF; return true;
    case 5: *out = xpath::Fragment::kPXPath; return true;
    case 6: *out = xpath::Fragment::kFullXPath; return true;
  }
  return false;
}

void EncodeFragment(const xpath::FragmentReport& report, std::string* out) {
  uint8_t flags = 0;
  if (report.in_pf) flags |= kFragPf;
  if (report.in_positive_core) flags |= kFragPositiveCore;
  if (report.in_core) flags |= kFragCore;
  if (report.in_pwf) flags |= kFragPwf;
  if (report.in_wf) flags |= kFragWf;
  if (report.in_pxpath) flags |= kFragPxpath;
  Append<uint8_t>(flags, out);
  Append<uint8_t>(FragmentByte(report.smallest), out);
}

Result<xpath::FragmentReport> DecodeFragment(Reader* reader) {
  uint8_t flags = 0, smallest = 0;
  if (!reader->Read(&flags) || !reader->Read(&smallest)) {
    return Corrupt("truncated fragment report");
  }
  xpath::FragmentReport report;
  report.in_pf = (flags & kFragPf) != 0;
  report.in_positive_core = (flags & kFragPositiveCore) != 0;
  report.in_core = (flags & kFragCore) != 0;
  report.in_pwf = (flags & kFragPwf) != 0;
  report.in_wf = (flags & kFragWf) != 0;
  report.in_pxpath = (flags & kFragPxpath) != 0;
  if (!FragmentFromByte(smallest, &report.smallest)) {
    return Corrupt("unknown fragment byte");
  }
  return report;
}

// ----------------------------------------------------------------- answer

void EncodeAnswer(const WireAnswer& wire, std::string* out) {
  EncodeStatus(wire.status, out);
  if (!wire.status.ok()) return;
  AppendString(wire.answer.evaluator, out);
  EncodeFragment(wire.answer.fragment, out);
  EncodeValue(wire.answer.value, out);
}

Result<WireAnswer> DecodeAnswer(Reader* reader) {
  WireAnswer wire;
  if (!DecodeStatus(reader, &wire.status)) return Corrupt("bad status");
  if (!wire.status.ok()) return wire;
  if (!reader->ReadString(&wire.answer.evaluator)) {
    return Corrupt("truncated answer evaluator");
  }
  GKX_ASSIGN_OR_RETURN(wire.answer.fragment, DecodeFragment(reader));
  GKX_ASSIGN_OR_RETURN(wire.answer.value, DecodeValue(reader));
  return wire;
}

// ------------------------------------------------------------------- edit

// [u8 kind][i32 target][i32 position][string text][string label]
// [u8 has_subtree][string snapshot bytes] — the subtree rides as an arena
// snapshot (xml/snapshot.hpp), whose own header checksum re-validates it.
uint8_t EditKindByte(xml::SubtreeEdit::Kind kind) {
  switch (kind) {
    case xml::SubtreeEdit::Kind::kReplaceSubtree: return 0;
    case xml::SubtreeEdit::Kind::kRemoveSubtree: return 1;
    case xml::SubtreeEdit::Kind::kInsertSubtree: return 2;
    case xml::SubtreeEdit::Kind::kSetText: return 3;
    case xml::SubtreeEdit::Kind::kRelabel: return 4;
  }
  return 3;
}

bool EditKindFromByte(uint8_t byte, xml::SubtreeEdit::Kind* out) {
  switch (byte) {
    case 0: *out = xml::SubtreeEdit::Kind::kReplaceSubtree; return true;
    case 1: *out = xml::SubtreeEdit::Kind::kRemoveSubtree; return true;
    case 2: *out = xml::SubtreeEdit::Kind::kInsertSubtree; return true;
    case 3: *out = xml::SubtreeEdit::Kind::kSetText; return true;
    case 4: *out = xml::SubtreeEdit::Kind::kRelabel; return true;
  }
  return false;
}

void EncodeEdit(const xml::SubtreeEdit& edit, std::string* out) {
  Append<uint8_t>(EditKindByte(edit.kind), out);
  Append<int32_t>(edit.target, out);
  Append<int32_t>(edit.position, out);
  AppendString(edit.text, out);
  AppendString(edit.label, out);
  if (edit.subtree.empty()) {
    Append<uint8_t>(0, out);
  } else {
    Append<uint8_t>(1, out);
    std::string snapshot;
    xml::SaveSnapshotBytes(edit.subtree, &snapshot);
    AppendString(snapshot, out);
  }
}

Result<xml::SubtreeEdit> DecodeEdit(Reader* reader) {
  xml::SubtreeEdit edit;
  uint8_t kind_byte = 0, has_subtree = 0;
  if (!reader->Read(&kind_byte) || !EditKindFromByte(kind_byte, &edit.kind) ||
      !reader->Read(&edit.target) || !reader->Read(&edit.position) ||
      !reader->ReadString(&edit.text) || !reader->ReadString(&edit.label) ||
      !reader->Read(&has_subtree)) {
    return Corrupt("truncated edit");
  }
  if (has_subtree != 0) {
    std::string snapshot;
    if (!reader->ReadString(&snapshot)) return Corrupt("truncated edit subtree");
    GKX_ASSIGN_OR_RETURN(edit.subtree,
                         xml::LoadSnapshotBytes(snapshot, "wire edit subtree"));
  }
  return edit;
}

void EncodeRequest(const WireRequest& request, std::string* out) {
  AppendString(request.doc_key, out);
  AppendString(request.query, out);
}

Result<WireRequest> DecodeRequest(Reader* reader) {
  WireRequest request;
  if (!reader->ReadString(&request.doc_key) ||
      !reader->ReadString(&request.query)) {
    return Corrupt("truncated request");
  }
  return request;
}

}  // namespace

std::string EncodeMessage(const Message& message) {
  std::string out;
  // Rough per-entry estimate; answers carry a value + fragment + evaluator,
  // requests two short strings. Saves the growth-reallocation ladder on
  // large batches; exact size is irrelevant.
  out.reserve(16 + message.requests.size() * 48 + message.answers.size() * 96 +
              message.text.size());
  Append<uint8_t>(kWireVersion, &out);
  Append<uint8_t>(static_cast<uint8_t>(message.type), &out);
  switch (message.type) {
    case MsgType::kPing:
    case MsgType::kPong:
      break;
    case MsgType::kSubmit:
      EncodeRequest(message.requests.at(0), &out);
      break;
    case MsgType::kSubmitBatch:
      Append<uint32_t>(static_cast<uint32_t>(message.requests.size()), &out);
      for (const WireRequest& request : message.requests) {
        EncodeRequest(request, &out);
      }
      break;
    case MsgType::kRegisterXml:
      AppendString(message.doc_key, &out);
      AppendString(message.text, &out);
      break;
    case MsgType::kUpdate:
      AppendString(message.doc_key, &out);
      EncodeEdit(message.edit, &out);
      break;
    case MsgType::kRemove:
      AppendString(message.doc_key, &out);
      break;
    case MsgType::kStats:
      Append<uint8_t>(message.stats_format, &out);
      break;
    case MsgType::kAnswer:
      EncodeAnswer(message.answers.at(0), &out);
      break;
    case MsgType::kAnswerBatch:
      Append<uint32_t>(static_cast<uint32_t>(message.answers.size()), &out);
      for (const WireAnswer& answer : message.answers) {
        EncodeAnswer(answer, &out);
      }
      break;
    case MsgType::kStatusReply:
      EncodeStatus(message.status, &out);
      break;
    case MsgType::kStatsReply:
      AppendString(message.text, &out);
      break;
  }
  return out;
}

Result<Message> DecodeMessage(std::string_view payload) {
  Reader reader(payload);
  uint8_t version = 0, type_byte = 0;
  if (!reader.Read(&version) || !reader.Read(&type_byte)) {
    return Corrupt("truncated payload header");
  }
  if (version != kWireVersion) {
    return Corrupt("unsupported wire version " + std::to_string(version));
  }
  Message message;
  message.type = static_cast<MsgType>(type_byte);
  switch (message.type) {
    case MsgType::kPing:
    case MsgType::kPong:
      break;
    case MsgType::kSubmit: {
      WireRequest request;
      GKX_ASSIGN_OR_RETURN(request, DecodeRequest(&reader));
      message.requests.push_back(std::move(request));
      break;
    }
    case MsgType::kSubmitBatch: {
      uint32_t count = 0;
      if (!reader.Read(&count)) return Corrupt("truncated batch");
      message.requests.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        WireRequest request;
        GKX_ASSIGN_OR_RETURN(request, DecodeRequest(&reader));
        message.requests.push_back(std::move(request));
      }
      break;
    }
    case MsgType::kRegisterXml:
      if (!reader.ReadString(&message.doc_key) ||
          !reader.ReadString(&message.text)) {
        return Corrupt("truncated register");
      }
      break;
    case MsgType::kUpdate: {
      if (!reader.ReadString(&message.doc_key)) {
        return Corrupt("truncated update");
      }
      GKX_ASSIGN_OR_RETURN(message.edit, DecodeEdit(&reader));
      break;
    }
    case MsgType::kRemove:
      if (!reader.ReadString(&message.doc_key)) {
        return Corrupt("truncated remove");
      }
      break;
    case MsgType::kStats:
      if (!reader.Read(&message.stats_format)) {
        return Corrupt("truncated stats request");
      }
      break;
    case MsgType::kAnswer: {
      WireAnswer answer;
      GKX_ASSIGN_OR_RETURN(answer, DecodeAnswer(&reader));
      message.answers.push_back(std::move(answer));
      break;
    }
    case MsgType::kAnswerBatch: {
      uint32_t count = 0;
      if (!reader.Read(&count)) return Corrupt("truncated answer batch");
      message.answers.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        WireAnswer answer;
        GKX_ASSIGN_OR_RETURN(answer, DecodeAnswer(&reader));
        message.answers.push_back(std::move(answer));
      }
      break;
    }
    case MsgType::kStatusReply:
      if (!DecodeStatus(&reader, &message.status)) {
        return Corrupt("bad status reply");
      }
      break;
    case MsgType::kStatsReply:
      if (!reader.ReadString(&message.text)) {
        return Corrupt("truncated stats reply");
      }
      break;
    default:
      return Corrupt("unknown message type " + std::to_string(type_byte));
  }
  if (!reader.AtEnd()) return Corrupt("trailing bytes after message");
  return message;
}

void AppendFrame(std::string_view payload, std::string* out) {
  wal::AppendFrame(payload, out);
}

Status WriteFrame(int fd, std::string_view payload) {
  std::string frame;
  frame.reserve(wal::kFrameHeaderBytes + payload.size());
  wal::AppendFrame(payload, &frame);
  size_t written = 0;
  while (written < frame.size()) {
    ssize_t n = ::write(fd, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return InternalError(std::string("net: write failed: ") +
                           std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

namespace {

/// Reads exactly `size` bytes. `*clean_eof` is set only when EOF hits
/// before the first byte AND `eof_ok` allows it.
Status ReadExactly(int fd, char* buffer, size_t size, bool eof_ok,
                   bool* clean_eof) {
  size_t have = 0;
  while (have < size) {
    ssize_t n = ::read(fd, buffer + have, size - have);
    if (n < 0) {
      if (errno == EINTR) continue;
      return InternalError(std::string("net: read failed: ") +
                           std::strerror(errno));
    }
    if (n == 0) {
      if (have == 0 && eof_ok) {
        *clean_eof = true;
        return Status::Ok();
      }
      return InternalError("net: connection closed mid-frame");
    }
    have += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Result<std::string> ReadFrame(int fd, bool* clean_eof) {
  *clean_eof = false;
  char header[wal::kFrameHeaderBytes];
  GKX_RETURN_IF_ERROR(
      ReadExactly(fd, header, sizeof(header), /*eof_ok=*/true, clean_eof));
  if (*clean_eof) return std::string();
  uint32_t size = 0, crc = 0;
  std::memcpy(&size, header, sizeof(size));
  std::memcpy(&crc, header + sizeof(size), sizeof(crc));
  if (size > kMaxPayloadBytes) {
    return InvalidArgumentError("net: implausible frame size " +
                                std::to_string(size));
  }
  std::string payload(size, '\0');
  bool ignored = false;
  GKX_RETURN_IF_ERROR(
      ReadExactly(fd, payload.data(), size, /*eof_ok=*/false, &ignored));
  if (wal::Crc32(payload.data(), payload.size()) != crc) {
    return InvalidArgumentError("net: frame CRC mismatch");
  }
  return payload;
}

}  // namespace gkx::net
