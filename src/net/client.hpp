// Blocking single-connection client for the gkx::net wire protocol. One
// request is in flight at a time (write frame, read frame); the class is
// NOT thread-safe — callers wanting parallel wire traffic open one Client
// per thread, which also matches the server's thread-per-connection model.
//
// Transport errors (broken connection, CRC mismatch, protocol violation)
// surface as the per-call Status; after one the connection is closed and
// the client must Connect() again.

#ifndef GKX_NET_CLIENT_HPP_
#define GKX_NET_CLIENT_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.hpp"
#include "eval/engine.hpp"
#include "net/frame.hpp"
#include "service/stats.hpp"
#include "xml/edit.hpp"

namespace gkx::net {

class Client {
 public:
  using Answer = eval::Engine::Answer;

  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  Status Ping();
  Result<Answer> Submit(const std::string& doc_key,
                        const std::string& query_text);
  /// One round trip for the whole batch; responses positional. A transport
  /// failure fills every slot with the same error.
  std::vector<Result<Answer>> SubmitBatch(
      const std::vector<WireRequest>& requests);
  Status RegisterXml(const std::string& doc_key, const std::string& xml);
  Status UpdateDocument(const std::string& doc_key,
                        const xml::SubtreeEdit& edit);
  Status RemoveDocument(const std::string& doc_key);
  Result<std::string> ExportStats(service::StatsFormat format);

 private:
  /// Sends `request`, reads one frame back, checks the response type.
  Result<Message> RoundTrip(const Message& request, MsgType expected);

  int fd_ = -1;
};

}  // namespace gkx::net

#endif  // GKX_NET_CLIENT_HPP_
