// Service-level observability: per-evaluator dispatch counters and latency
// percentiles over a sliding window. Header-only; everything here is
// thread-safe and cheap enough to sit on the request path.

#ifndef GKX_SERVICE_STATS_HPP_
#define GKX_SERVICE_STATS_HPP_

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace gkx::service {

/// Percentile summary of recent request latencies.
struct LatencySummary {
  int64_t count = 0;  // total requests recorded (not just the window)
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;  // max within the window
};

/// Sliding-window latency reservoir: keeps the last `window` samples in a
/// ring buffer; Summary() sorts a copy (called off the hot path).
class LatencyRecorder {
 public:
  explicit LatencyRecorder(size_t window = 4096)
      : window_(window == 0 ? 1 : window) {}

  void Record(double millis) {
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.size() < window_) {
      samples_.push_back(millis);
    } else {
      samples_[next_ % window_] = millis;
    }
    ++next_;
    ++count_;
  }

  LatencySummary Summary() const {
    std::vector<double> sorted;
    int64_t count = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      sorted = samples_;
      count = count_;
    }
    LatencySummary out;
    out.count = count;
    if (sorted.empty()) return out;
    std::sort(sorted.begin(), sorted.end());
    auto at = [&](double q) {
      size_t i = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
      return sorted[i];
    };
    out.p50_ms = at(0.50);
    out.p90_ms = at(0.90);
    out.p99_ms = at(0.99);
    out.max_ms = sorted.back();
    return out;
  }

 private:
  mutable std::mutex mu_;
  size_t window_;
  size_t next_ = 0;
  int64_t count_ = 0;
  std::vector<double> samples_;
};

/// How often each evaluator produced an answer ("pf-frontier",
/// "core-linear", "cvt-lazy", "pf-indexed", ...).
class EvaluatorCounters {
 public:
  void Increment(std::string_view evaluator) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counts_[std::string(evaluator)];
  }

  std::map<std::string, int64_t> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counts_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> counts_;
};

}  // namespace gkx::service

#endif  // GKX_SERVICE_STATS_HPP_
