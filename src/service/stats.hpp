// Service-level observability primitives shared by the stats snapshot and
// the exporter. Latency percentiles come from the obs::Histogram (all-time,
// exact-by-bucket — see obs/histogram.hpp); the old sliding-window
// LatencyRecorder is gone, and with it its recency bias: it kept only the
// last 4096 samples, so its Summary() silently reported a window percentile
// against an all-time count.

#ifndef GKX_SERVICE_STATS_HPP_
#define GKX_SERVICE_STATS_HPP_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/histogram.hpp"

namespace gkx::service {

/// All-time percentile summary of request latencies, in milliseconds.
struct LatencySummary {
  int64_t count = 0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
  double mean_ms = 0.0;
};

/// Converts an obs histogram summary (kNanos histograms already display in
/// milliseconds) into the service-facing latency struct.
inline LatencySummary ToLatencySummary(const obs::HistogramSummary& h) {
  LatencySummary out;
  out.count = h.count;
  out.p50_ms = h.p50;
  out.p90_ms = h.p90;
  out.p99_ms = h.p99;
  out.p999_ms = h.p999;
  out.max_ms = h.max;
  out.mean_ms = h.mean;
  return out;
}

/// Output flavour of QueryService::ExportStats.
enum class StatsFormat {
  kText,  // flat `gkx_section_name value` lines (Prometheus-style)
  kJson,  // the structured "gkx-stats-v1" document
};

/// How often each evaluator produced an answer ("pf-frontier",
/// "core-linear", "cvt-lazy", "pf-indexed", ...).
class EvaluatorCounters {
 public:
  void Increment(std::string_view evaluator) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counts_[std::string(evaluator)];
  }

  std::map<std::string, int64_t> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counts_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> counts_;
};

}  // namespace gkx::service

#endif  // GKX_SERVICE_STATS_HPP_
