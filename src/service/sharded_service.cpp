#include "service/sharded_service.hpp"

#include <exception>
#include <iterator>
#include <utility>

#include "base/check.hpp"
#include "obs/json.hpp"
#include "service/stats_json.hpp"

namespace gkx::service {

ShardedQueryService::ShardedQueryService(const Options& options)
    : options_(options), map_(options.shards) {
  GKX_CHECK(options.shard.wal_dir.empty());  // configure via Options::wal_dir
  pool_ = options.pool != nullptr     ? options.pool
          : options.shard.pool != nullptr ? options.shard.pool
                                          : &ThreadPool::Shared();
  shards_.reserve(static_cast<size_t>(options.shards));
  for (int i = 0; i < options.shards; ++i) {
    QueryService::Options shard_options = options.shard;
    if (!options.wal_dir.empty()) {
      shard_options.wal_dir = options.wal_dir + "/shard" + std::to_string(i);
    }
    shards_.push_back(std::make_unique<QueryService>(shard_options));
  }
}

// ---------------------------------------------------------------- corpus

Status ShardedQueryService::RegisterDocument(std::string key,
                                             xml::Document doc) {
  QueryService& shard = Owner(key);
  return shard.RegisterDocument(std::move(key), std::move(doc));
}

Status ShardedQueryService::RegisterXml(std::string key,
                                        std::string_view xml) {
  QueryService& shard = Owner(key);
  return shard.RegisterXml(std::move(key), xml);
}

Status ShardedQueryService::UpdateDocument(std::string_view key,
                                           const xml::SubtreeEdit& edit) {
  return Owner(key).UpdateDocument(key, edit);
}

bool ShardedQueryService::RemoveDocument(std::string_view key) {
  return Owner(key).RemoveDocument(key);
}

size_t ShardedQueryService::document_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->documents().size();
  return total;
}

// ---------------------------------------------------------------- queries

Result<ShardedQueryService::Answer> ShardedQueryService::Submit(
    const std::string& doc_key, const std::string& query_text) {
  return Owner(doc_key).Submit(doc_key, query_text);
}

std::vector<Result<ShardedQueryService::Answer>>
ShardedQueryService::SubmitBatch(const std::vector<Request>& requests) {
  if (shards_.size() == 1) return shards_[0]->SubmitBatch(requests);

  // Scatter: request index lists per owning shard, original order kept
  // within each shard so the gather is a positional re-stitch.
  std::vector<std::vector<size_t>> by_shard(shards_.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    by_shard[static_cast<size_t>(map_.ShardOf(requests[i].doc_key))]
        .push_back(i);
  }
  std::vector<size_t> active;
  for (size_t s = 0; s < by_shard.size(); ++s) {
    if (!by_shard[s].empty()) active.push_back(s);
  }

  std::vector<Result<Answer>> responses(
      requests.size(), Result<Answer>(InternalError("request not routed")));
  auto run_shard = [&](size_t s) {
    const std::vector<size_t>& indices = by_shard[s];
    std::vector<Request> sub_batch;
    sub_batch.reserve(indices.size());
    for (size_t i : indices) sub_batch.push_back(requests[i]);
    // Partial-failure stitching: an exception out of one shard's batch
    // executor (ThreadPool::ParallelFor rethrows the first task exception)
    // poisons only that shard's slots — sibling shards already wrote, or
    // will still write, their own results.
    try {
      std::vector<Result<Answer>> sub = shards_[s]->SubmitBatch(sub_batch);
      GKX_CHECK(sub.size() == indices.size());
      for (size_t k = 0; k < indices.size(); ++k) {
        responses[indices[k]] = std::move(sub[k]);
      }
    } catch (const std::exception& e) {
      const Status failure = InternalError(
          "shard " + std::to_string(s) + " sub-batch failed: " + e.what());
      for (size_t i : indices) responses[i] = failure;
    } catch (...) {
      const Status failure = InternalError(
          "shard " + std::to_string(s) + " sub-batch failed");
      for (size_t i : indices) responses[i] = failure;
    }
  };

  if (active.size() == 1) {
    run_shard(active[0]);
  } else if (!active.empty()) {
    pool_->ParallelFor(static_cast<int>(active.size()),
                       [&](int k) { run_shard(active[static_cast<size_t>(k)]); });
  }
  return responses;
}

// ---------------------------------------------------------- subscriptions

Result<int64_t> ShardedQueryService::Subscribe(
    std::string doc_selector, const std::string& query_text,
    mview::SubscriptionCallback callback) {
  auto merged = std::make_shared<MergedSubscription>();
  merged->callback = std::move(callback);
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    merged->id = next_subscription_id_++;
  }
  // Every member shard delivers through this one fan-in: the event's
  // shard-level id is rewritten to the router id and the caller's callback
  // runs under one mutex, so deliveries from different shards never overlap
  // and per-document order (one shard, serialized per member) is preserved.
  auto fan_in = [merged](const mview::SubscriptionEvent& event) {
    mview::SubscriptionEvent rewritten = event;
    rewritten.subscription = merged->id;
    std::lock_guard<std::mutex> lock(merged->mu);
    merged->callback(rewritten);
  };

  const bool prefix =
      !doc_selector.empty() && doc_selector.back() == '*';
  std::vector<std::pair<int, int64_t>> members;
  auto subscribe_on = [&](int shard_index) -> Status {
    Result<int64_t> member =
        shards_[static_cast<size_t>(shard_index)]->Subscribe(
            doc_selector, query_text, fan_in);
    if (!member.ok()) return member.status();
    members.emplace_back(shard_index, *member);
    return Status::Ok();
  };
  if (prefix) {
    // A prefix selector can match keys on any shard.
    for (int s = 0; s < shard_count(); ++s) {
      Status status = subscribe_on(s);
      if (!status.ok()) {
        for (const auto& [shard_index, member_id] : members) {
          shards_[static_cast<size_t>(shard_index)]->Unsubscribe(member_id);
        }
        return status;
      }
    }
  } else {
    // Exact key: only the owning shard can ever match.
    GKX_RETURN_IF_ERROR(subscribe_on(map_.ShardOf(doc_selector)));
  }

  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    subs_[merged->id] = std::move(members);
  }
  return merged->id;
}

bool ShardedQueryService::Unsubscribe(int64_t subscription_id) {
  std::vector<std::pair<int, int64_t>> members;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    auto it = subs_.find(subscription_id);
    if (it == subs_.end()) return false;
    members = std::move(it->second);
    subs_.erase(it);
  }
  bool ok = true;
  for (const auto& [shard_index, member_id] : members) {
    ok = shards_[static_cast<size_t>(shard_index)]->Unsubscribe(member_id) && ok;
  }
  return ok;
}

void ShardedQueryService::FlushSubscriptions() {
  for (const auto& shard : shards_) shard->FlushSubscriptions();
}

// ------------------------------------------------------------------ admin

ServiceStats ShardedQueryService::AggregateStats(
    obs::Histogram* latency, obs::HistogramFamily* routes,
    obs::MetricRegistry* registry) const {
  ServiceStats agg;
  for (const auto& shard : shards_) {
    const ServiceStats s = shard->Stats();
    agg.requests += s.requests;
    agg.batches += s.batches;
    agg.failures += s.failures;
    agg.documents += s.documents;
    agg.plan_cache_entries += s.plan_cache_entries;

    agg.plan_cache.hits += s.plan_cache.hits;
    agg.plan_cache.canonical_hits += s.plan_cache.canonical_hits;
    agg.plan_cache.misses += s.plan_cache.misses;
    agg.plan_cache.parse_failures += s.plan_cache.parse_failures;
    agg.plan_cache.evictions += s.plan_cache.evictions;

    agg.answer_cache_enabled = s.answer_cache_enabled;
    agg.answer_cache.hits += s.answer_cache.hits;
    agg.answer_cache.misses += s.answer_cache.misses;
    agg.answer_cache.inserts += s.answer_cache.inserts;
    agg.answer_cache.invalidations += s.answer_cache.invalidations;
    agg.answer_cache.retained += s.answer_cache.retained;
    agg.answer_cache.remapped += s.answer_cache.remapped;
    agg.answer_cache.evictions += s.answer_cache.evictions;
    agg.answer_cache.declined += s.answer_cache.declined;
    agg.answer_cache.bytes += s.answer_cache.bytes;
    agg.answer_cache.entries += s.answer_cache.entries;

    agg.subscriptions.active += s.subscriptions.active;
    agg.subscriptions.fired += s.subscriptions.fired;
    agg.subscriptions.coalesced += s.subscriptions.coalesced;
    agg.subscriptions.skipped_disjoint += s.subscriptions.skipped_disjoint;
    agg.subscriptions.evaluations += s.subscriptions.evaluations;

    for (const auto& [name, count] : s.evaluator_counts) {
      agg.evaluator_counts[name] += count;
    }
    for (const auto& [name, count] : s.segment_route_counts) {
      agg.segment_route_counts[name] += count;
    }
    agg.tracing = s.tracing;  // identical options across shards
    agg.staged_segments += s.staged_segments;
    agg.exec_parallel_segments += s.exec_parallel_segments;
    agg.exec_sequential_segments += s.exec_sequential_segments;
    agg.exec_skipped_segments += s.exec_skipped_segments;
    agg.slow_queries += s.slow_queries;

    shard->MergeObservabilityInto(latency, routes, registry);
  }
  if (latency != nullptr) {
    agg.latency = ToLatencySummary(latency->Summary());
  }
  if (routes != nullptr) {
    agg.route_latency = routes->Summaries();
  }
  return agg;
}

ServiceStats ShardedQueryService::Stats() const {
  obs::Histogram latency(obs::Histogram::Unit::kNanos);
  obs::HistogramFamily routes(obs::Histogram::Unit::kNanos);
  return AggregateStats(&latency, &routes, nullptr);
}

std::vector<ServiceStats> ShardedQueryService::ShardStats() const {
  std::vector<ServiceStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->Stats());
  return out;
}

std::string ShardedQueryService::ExportStats(StatsFormat format) const {
  obs::Histogram latency(obs::Histogram::Unit::kNanos);
  obs::HistogramFamily routes(obs::Histogram::Unit::kNanos);
  obs::MetricRegistry registry;

  StatsExportInputs inputs;
  inputs.stats = AggregateStats(&latency, &routes, &registry);
  inputs.registry = &registry;
  inputs.slow_query_threshold_ms = shards_[0]->slow_query_threshold_ms();
  for (const auto& shard : shards_) {
    std::vector<obs::SlowQuery> slow = shard->SlowQueries();
    inputs.slow_queries.insert(inputs.slow_queries.end(),
                               std::make_move_iterator(slow.begin()),
                               std::make_move_iterator(slow.end()));
  }

  obs::json::Value root = BuildStatsDocument(inputs);
  {
    obs::json::Value sharding = obs::json::Value::Object();
    sharding["shards"] = obs::json::Value(
        static_cast<int64_t>(shards_.size()));
    root["sharding"] = std::move(sharding);
  }
  {
    obs::json::Value breakdown = obs::json::Value::Array();
    for (size_t i = 0; i < shards_.size(); ++i) {
      obs::json::Value doc = shards_[i]->ExportStatsDocument();
      doc["shard"] = obs::json::Value(static_cast<int64_t>(i));
      breakdown.Append(std::move(doc));
    }
    root["shards"] = std::move(breakdown);
  }
  return RenderStatsDocument(root, format);
}

Status ShardedQueryService::CheckpointNow() {
  Status first = Status::Ok();
  for (const auto& shard : shards_) {
    Status status = shard->CheckpointNow();
    if (!status.ok() && first.ok()) first = status;
  }
  return first;
}

}  // namespace gkx::service
