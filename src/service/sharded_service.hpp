// Shared-nothing corpus sharding: N independent QueryService shards behind
// one router that preserves the single-service public API. Each shard owns
// the full vertical — DocumentStore, PlanCache, AnswerCache,
// SubscriptionManager, metric registry, and (when durable) its own WAL
// directory — and never shares mutable state with a sibling: no cross-shard
// locks, no global listener fan-out, no shared caches. Documents are
// partitioned by ShardMap (stable FNV-1a of the key, see shard_map.hpp), so
// footprint invalidation, subscription scheduling, and journal recovery are
// per-shard by construction. Today's single process is exactly the N=1
// case.
//
// Routing:
//   * point requests (Register/Update/Remove/Submit) go to the owning
//     shard — one hash, no coordination;
//   * SubmitBatch scatters one sub-batch per shard over the ThreadPool and
//     re-stitches results in request order. A sub-batch that fails
//     wholesale on one shard (an exception out of the shard's batch
//     executor) marks only that shard's request slots as kInternal —
//     sibling shards' results are never discarded (per-request Result
//     stitching);
//   * Subscribe routes an exact-key selector to the owning shard and a
//     trailing-'*' prefix selector to every shard, then fans all member
//     deliveries into the caller's single callback through one mutex — the
//     subscriber sees one logical stream under one router-level id, with
//     per-document event order preserved (a document lives on exactly one
//     shard). Unlike QueryService, the router callback must NOT call
//     Unsubscribe on its own subscription: with multiple member shards the
//     unsubscribe would block on a sibling delivery that is itself waiting
//     for the merged-delivery mutex the callback holds.
//
// Stats: Stats() sums counters across shards and merges the latency/route
// histograms bucket-exact (obs::Histogram::Merge), so aggregate percentiles
// are true percentiles, not averages of summaries. ExportStats() emits one
// aggregated "gkx-stats-v1" document plus a per-shard breakdown under
// "shards" (tools/check_stats_json re-proves that the per-shard route
// counts sum to the aggregate).
//
// Thread safety: every public method may be called concurrently, including
// SubmitBatch from many threads at once (scatter tasks nest safely on the
// shared pool).

#ifndef GKX_SERVICE_SHARDED_SERVICE_HPP_
#define GKX_SERVICE_SHARDED_SERVICE_HPP_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/status.hpp"
#include "base/thread_pool.hpp"
#include "mview/subscription.hpp"
#include "service/query_service.hpp"
#include "service/shard_map.hpp"
#include "service/stats.hpp"

namespace gkx::service {

class ShardedQueryService {
 public:
  struct Options {
    /// Number of shards (>= 1).
    int shards = 1;
    /// Per-shard configuration template. `shard.wal_dir` must stay empty —
    /// durability is configured through `wal_dir` below so the router can
    /// lay out one journal directory per shard.
    QueryService::Options shard;
    /// Durability root: non-empty opens shard i's WAL under
    /// `<wal_dir>/shard<i>`. Because ShardMap is stable, a reopened router
    /// with the same shard count recovers every document into the shard
    /// that journaled it.
    std::string wal_dir;
    /// Pool for the SubmitBatch scatter; nullptr = the shard template's
    /// pool, falling back to ThreadPool::Shared(). Shards and router share
    /// it — ParallelFor is nesting-safe, so scatter tasks may themselves
    /// fan out inside a shard.
    ThreadPool* pool = nullptr;
  };

  using Request = QueryService::Request;
  using Answer = QueryService::Answer;

  ShardedQueryService() : ShardedQueryService(Options{}) {}
  explicit ShardedQueryService(const Options& options);

  // -------------------------------------------------------------- corpus
  Status RegisterDocument(std::string key, xml::Document doc);
  Status RegisterXml(std::string key, std::string_view xml);
  Status UpdateDocument(std::string_view key, const xml::SubtreeEdit& edit);
  bool RemoveDocument(std::string_view key);
  /// Total documents across all shards.
  size_t document_count() const;

  // -------------------------------------------------------------- queries
  Result<Answer> Submit(const std::string& doc_key,
                        const std::string& query_text);
  /// Scatter-gather: one sub-batch per owning shard, run concurrently over
  /// the pool, results re-stitched so responses[i] answers requests[i].
  std::vector<Result<Answer>> SubmitBatch(const std::vector<Request>& requests);

  // -------------------------------------------------------- subscriptions
  /// Same contract as QueryService::Subscribe (selector semantics, initial
  /// pure-`added` answer, node-set queries only), delivered through one
  /// merged stream carrying the returned router-level id. See the header
  /// comment for the one extra restriction on callbacks.
  Result<int64_t> Subscribe(std::string doc_selector,
                            const std::string& query_text,
                            mview::SubscriptionCallback callback);
  bool Unsubscribe(int64_t subscription_id);
  /// Blocks until every member shard delivered everything scheduled so far.
  void FlushSubscriptions();

  // -------------------------------------------------------------- admin
  /// Cross-shard aggregate: counters summed, histograms merged bucket-exact.
  ServiceStats Stats() const;
  /// Per-shard snapshots, indexed by shard.
  std::vector<ServiceStats> ShardStats() const;
  /// One aggregated "gkx-stats-v1" document plus a "shards" breakdown.
  std::string ExportStats(StatsFormat format = StatsFormat::kText) const;
  /// Checkpoints every durable shard; first error wins (all shards are
  /// still attempted).
  Status CheckpointNow();

  int shard_count() const { return static_cast<int>(shards_.size()); }
  int ShardOf(std::string_view key) const { return map_.ShardOf(key); }
  /// Direct access to one shard — recovery inspection, targeted test hooks
  /// (e.g. CrashWalForTest on a single shard), never for routing around the
  /// partition map.
  QueryService& shard(int index) { return *shards_[index]; }
  const QueryService& shard(int index) const { return *shards_[index]; }

 private:
  /// Shared fan-in state of one router-level subscription.
  struct MergedSubscription {
    int64_t id = 0;
    std::mutex mu;  // the single merged delivery path
    mview::SubscriptionCallback callback;
  };

  QueryService& Owner(std::string_view key) { return *shards_[map_.ShardOf(key)]; }

  /// Folds every shard's stats into one snapshot; any destination may be
  /// null (Stats() skips the registry, ExportStats wants all three).
  ServiceStats AggregateStats(obs::Histogram* latency,
                              obs::HistogramFamily* routes,
                              obs::MetricRegistry* registry) const;

  Options options_;
  ShardMap map_;
  ThreadPool* pool_;  // never null after construction
  std::vector<std::unique_ptr<QueryService>> shards_;

  mutable std::mutex subs_mu_;
  /// Router subscription id → (shard index, shard-level id) members.
  std::unordered_map<int64_t, std::vector<std::pair<int, int64_t>>> subs_;
  int64_t next_subscription_id_ = 1;
};

}  // namespace gkx::service

#endif  // GKX_SERVICE_SHARDED_SERVICE_HPP_
