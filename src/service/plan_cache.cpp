#include "service/plan_cache.hpp"

#include <functional>
#include <utility>

#include "plan/physical.hpp"
#include "xpath/parser.hpp"

namespace gkx::service {

PlanCache::PlanCache(const Options& options) : on_evict_(options.on_evict) {
  size_t shards = options.shards == 0 ? 1 : options.shards;
  size_t capacity = options.capacity == 0 ? 1 : options.capacity;
  if (shards > capacity) shards = capacity;
  per_shard_capacity_ = (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PlanCache::Shard& PlanCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

PlanCache::PlanPtr PlanCache::Lookup(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->plan;
}

PlanCache::PlanPtr PlanCache::Insert(const std::string& key, PlanPtr plan) {
  Shard& shard = ShardFor(key);
  std::vector<std::string> evicted;
  PlanPtr resident;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // A concurrent compile of the same text won; share its plan.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->plan;
    }
    shard.lru.push_front(Entry{key, std::move(plan)});
    shard.map.emplace(key, shard.lru.begin());
    while (shard.lru.size() > per_shard_capacity_) {
      if (on_evict_) evicted.push_back(shard.lru.back().key);
      shard.map.erase(shard.lru.back().key);
      shard.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    resident = shard.lru.front().plan;
  }
  // Observation happens outside the shard lock so a callback may re-enter.
  if (on_evict_) {
    for (const std::string& victim : evicted) on_evict_(victim);
  }
  return resident;
}

Result<std::shared_ptr<const eval::Engine::Plan>> PlanCache::GetOrCompile(
    const std::string& query_text) {
  if (PlanPtr plan = Lookup(query_text)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return plan;
  }

  auto parsed = xpath::ParseQuery(query_text);
  if (!parsed.ok()) {
    parse_failures_.fetch_add(1, std::memory_order_relaxed);
    return parsed.status();
  }

  // Stage 1 (normalize) yields both the IR the plan is lowered from and the
  // canonical alias key — one normal form for cache aliasing and planning,
  // so every spelling in an equivalence class shares ONE physical plan.
  plan::Logical logical = plan::Normalize(std::move(*parsed));
  const std::string canonical = logical.canonical_text;
  if (canonical != query_text) {
    if (PlanPtr plan = Lookup(canonical)) {
      // Equivalent spelling compiled before; alias the raw text to it.
      canonical_hits_.fetch_add(1, std::memory_order_relaxed);
      return Insert(query_text, std::move(plan));
    }
  }

  // Stages 2 + 3: per-subexpression classification and segment fusion.
  misses_.fetch_add(1, std::memory_order_relaxed);
  plan::ClassifyOps(&logical);
  auto plan = std::make_shared<const eval::Engine::Plan>(
      plan::Lower(std::move(logical)));
  // Adopt the resident canonical plan: if a concurrent compile of an
  // equivalent spelling won the race, aliasing the raw text to OUR plan
  // would leave two Plan objects for one equivalence class.
  if (canonical != query_text) plan = Insert(canonical, std::move(plan));
  return Insert(query_text, std::move(plan));
}

std::shared_ptr<const eval::Engine::Plan> PlanCache::Peek(
    const std::string& query_text) {
  return Lookup(query_text);
}

PlanCache::Counters PlanCache::counters() const {
  Counters out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.canonical_hits = canonical_hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.parse_failures = parse_failures_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  return out;
}

size_t PlanCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

void PlanCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->map.clear();
    shard->lru.clear();
  }
}

}  // namespace gkx::service
