// The corpus half of the query service: named, long-lived documents.
// Registration parses (or accepts) an xml::Document once; every Submit
// against the same key reuses it. Each stored document lazily grows a
// DocumentIndex side-structure (built on first use, at most once) so the
// Document itself stays exactly the immutable preorder tree the evaluators
// already know.
//
// Thread safety: the store is fully thread-safe. Get() hands out
// shared_ptrs, so removing or replacing a key never invalidates documents
// that in-flight requests are still evaluating against.

#ifndef GKX_SERVICE_DOCUMENT_STORE_HPP_
#define GKX_SERVICE_DOCUMENT_STORE_HPP_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/status.hpp"
#include "xml/document.hpp"
#include "xml/index.hpp"

namespace gkx::service {

/// A registered document plus its lazily-built index.
class StoredDocument {
 public:
  explicit StoredDocument(xml::Document doc) : doc_(std::move(doc)) {}

  const xml::Document& doc() const { return doc_; }

  /// The acceleration index; built on first call (thread-safe, at most once).
  const xml::DocumentIndex& index() const;

  /// True if index() has been called (for tests / stats).
  bool index_built() const;

 private:
  xml::Document doc_;
  mutable std::once_flag index_once_;
  mutable std::unique_ptr<xml::DocumentIndex> index_;
  mutable std::atomic<bool> index_built_{false};
};

class DocumentStore {
 public:
  /// Registers (or replaces) a document under `key`. Empty documents are
  /// rejected: they have no root context to evaluate in.
  Status Put(std::string key, xml::Document doc);

  /// Parses `xml` and registers the result under `key`.
  Status PutXml(std::string key, std::string_view xml);

  /// The stored document, or nullptr if the key is unknown.
  std::shared_ptr<const StoredDocument> Get(std::string_view key) const;

  /// Removes a key; returns false if it was absent. In-flight users of the
  /// document keep their shared_ptr.
  bool Remove(std::string_view key);

  /// Registered keys, sorted.
  std::vector<std::string> Keys() const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const StoredDocument>> docs_;
};

}  // namespace gkx::service

#endif  // GKX_SERVICE_DOCUMENT_STORE_HPP_
