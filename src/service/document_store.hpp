// The corpus half of the query service: named, long-lived documents.
// Registration parses (or accepts) an xml::Document once; every Submit
// against the same key reuses it. Each stored document lazily grows a
// DocumentIndex side-structure (built on first use, at most once) so the
// Document itself stays exactly the immutable preorder tree the evaluators
// already know.
//
// Revisions: every Put stamps the stored document with a revision id drawn
// from one store-wide monotonic counter. Revisions are never reused — not
// across replacements of a key and not across Remove + re-Put — so an
// equality check against a StoredDocument::revision() can never confuse two
// distinct document states (no ABA). The mview answer cache keys cached
// answers by exactly this id.
//
// Update listener: an optional hook observing every corpus mutation
// (install, replace, remove), invoked *after* the store reflects the change
// and outside the store mutex (so a listener may call back into the store).
// Because it runs outside the lock, two racing Puts of the same key may
// invoke their listeners out of order; listeners must key any derived state
// on the revision ids, which totally order the transitions. This is the
// churn signal the mview layer (answer-cache invalidation, standing-query
// re-evaluation) hangs off.
//
// Thread safety: the store is fully thread-safe. Get() hands out
// shared_ptrs, so removing or replacing a key never invalidates documents
// that in-flight requests are still evaluating against.

#ifndef GKX_SERVICE_DOCUMENT_STORE_HPP_
#define GKX_SERVICE_DOCUMENT_STORE_HPP_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/status.hpp"
#include "xml/document.hpp"
#include "xml/index.hpp"

namespace gkx::service {

/// A registered document plus its lazily-built index and store revision.
class StoredDocument {
 public:
  explicit StoredDocument(xml::Document doc, int64_t revision = 0)
      : doc_(std::move(doc)), revision_(revision) {}

  const xml::Document& doc() const { return doc_; }

  /// Store-wide monotonic revision id assigned at Put time (0 for documents
  /// constructed outside a store, e.g. in tests).
  int64_t revision() const { return revision_; }

  /// The acceleration index; built on first call (thread-safe, at most once).
  const xml::DocumentIndex& index() const;

  /// True if index() has been called (for tests / stats).
  bool index_built() const;

  /// The document's sorted tag/label name set — what footprint invalidation
  /// intersects against. Reads it off the index when one is already built;
  /// otherwise a single pass over the intern pool, WITHOUT materializing
  /// posting lists (churn must not pay two index builds per replacement).
  std::vector<std::string> NameSet() const;

 private:
  xml::Document doc_;
  int64_t revision_ = 0;
  mutable std::once_flag index_once_;
  mutable std::unique_ptr<xml::DocumentIndex> index_;
  mutable std::atomic<bool> index_built_{false};
};

class DocumentStore {
 public:
  /// Observes corpus mutations. `old_doc` is nullptr on a fresh install,
  /// `new_doc` is nullptr on removal; both are non-null on replacement.
  /// Called outside the store mutex, after the store reflects the change.
  using UpdateListener = std::function<void(
      const std::string& key, const std::shared_ptr<const StoredDocument>& old_doc,
      const std::shared_ptr<const StoredDocument>& new_doc)>;

  /// Installs the mutation observer. Not thread-safe against concurrent
  /// Put/Remove — set it once, before traffic (the QueryService does this in
  /// its constructor).
  void SetUpdateListener(UpdateListener listener) {
    listener_ = std::move(listener);
  }

  /// Registers (or replaces) a document under `key`. Empty documents are
  /// rejected: they have no root context to evaluate in.
  Status Put(std::string key, xml::Document doc);

  /// Parses `xml` and registers the result under `key`.
  Status PutXml(std::string key, std::string_view xml);

  /// The stored document, or nullptr if the key is unknown.
  std::shared_ptr<const StoredDocument> Get(std::string_view key) const;

  /// Removes a key; returns false if it was absent. In-flight users of the
  /// document keep their shared_ptr.
  bool Remove(std::string_view key);

  /// Registered keys, sorted.
  std::vector<std::string> Keys() const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const StoredDocument>> docs_;
  std::atomic<int64_t> next_revision_{1};
  UpdateListener listener_;
};

}  // namespace gkx::service

#endif  // GKX_SERVICE_DOCUMENT_STORE_HPP_
