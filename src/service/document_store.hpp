// The corpus half of the query service: named, long-lived documents.
// Registration parses (or accepts) an xml::Document once; every Submit
// against the same key reuses it. Each stored document lazily grows a
// DocumentIndex side-structure (built on first use, at most once) so the
// Document itself stays exactly the immutable preorder tree the evaluators
// already know.
//
// Mutation paths: Put/PutXml replace a key wholesale; Update(key, edit)
// applies a subtree patch (xml/edit.hpp) to the current revision — one
// O(|D|) splice instead of parse + rebuild — and, when the old revision's
// index was already built, splices the posting lists too instead of
// rebuilding them on the next query. Update is optimistic: the edit is
// applied outside the store mutex against a snapshot and installed only if
// the key still holds that snapshot (a racing Put/Remove/Update forces a
// retry), so readers are never blocked behind an O(|D|) splice.
//
// Revisions: every Put/Update stamps the stored document with a revision id
// drawn from one store-wide monotonic counter. Revisions are never reused —
// not across replacements of a key and not across Remove + re-Put — so an
// equality check against a StoredDocument::revision() can never confuse two
// distinct document states (no ABA). The mview answer cache keys cached
// answers by exactly this id.
//
// Update listener: an optional hook observing every corpus mutation as a
// CorpusUpdate (install, replace, subtree update, remove), invoked *after*
// the store reflects the change and outside the store mutex (so a listener
// may call back into the store). Because it runs outside the lock, two
// racing mutations of the same key may invoke their listeners out of
// order; listeners must key any derived state on the revision ids, which
// totally order the transitions. This is the churn signal the mview layer
// (answer-cache invalidation, standing-query re-evaluation) hangs off. The
// CorpusUpdate carries the changed-name set pre-computed from the cached
// per-document name sets (or the delta), so churn never rescans an intern
// pool, and — for subtree updates — the DocumentDelta itself, which is what
// upgrades invalidation from document×name to region×name precision.
//
// Thread safety: the store is fully thread-safe. Get() hands out
// shared_ptrs, so removing or replacing a key never invalidates documents
// that in-flight requests are still evaluating against.

#ifndef GKX_SERVICE_DOCUMENT_STORE_HPP_
#define GKX_SERVICE_DOCUMENT_STORE_HPP_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/status.hpp"
#include "base/string_util.hpp"
#include "xml/document.hpp"
#include "xml/edit.hpp"
#include "xml/index.hpp"

namespace gkx::wal {
class Wal;
}

namespace gkx::service {

/// A registered document plus its lazily-built index, store revision, and
/// cached name set.
class StoredDocument {
 public:
  explicit StoredDocument(xml::Document doc, int64_t revision = 0);

  const xml::Document& doc() const { return doc_; }

  /// Store-wide monotonic revision id assigned at Put/Update time (0 for
  /// documents constructed outside a store, e.g. in tests).
  int64_t revision() const { return revision_; }

  /// The acceleration index; built on first call (thread-safe, at most
  /// once). Subtree updates of an indexed document pre-splice the index at
  /// Update time, so the first query after a patch pays no rebuild.
  const xml::DocumentIndex& index() const;

  /// True if index() has been called or a spliced index was adopted.
  bool index_built() const;

  /// The document's sorted tag/label name set — what whole-document
  /// footprint invalidation intersects against. Computed ONCE at
  /// construction (from the intern pool, or exactly from a spliced index)
  /// and cached, so churn events compare two cached vectors instead of
  /// rescanning pools; and never builds an index (churn must not pay two
  /// index builds per replacement). After subtree edits the pool-derived
  /// set can be a superset of the present names (see
  /// Document::InternedNames), which only ever over-invalidates.
  const std::vector<std::string>& NameSet() const { return name_set_; }

 private:
  friend class DocumentStore;

  /// Installs a pre-built (spliced) index and tightens name_set_ to the
  /// index's exact PresentNames. Must be called before the StoredDocument
  /// is published to other threads.
  void AdoptIndex(std::unique_ptr<xml::DocumentIndex> index);

  xml::Document doc_;
  int64_t revision_ = 0;
  std::vector<std::string> name_set_;
  mutable std::mutex index_mu_;
  mutable std::unique_ptr<xml::DocumentIndex> index_;
  mutable std::atomic<const xml::DocumentIndex*> index_ptr_{nullptr};
};

/// One corpus mutation, as seen by the update listener. `old_doc` is null
/// on a fresh install, `new_doc` is null on removal; both are non-null on
/// replacement and subtree update.
struct CorpusUpdate {
  std::string key;
  std::shared_ptr<const StoredDocument> old_doc;
  std::shared_ptr<const StoredDocument> new_doc;
  /// The subtree delta for Update(); null for whole-document mutations
  /// (Put/Remove — the degenerate "everything may have changed" delta).
  /// Points into the notifying call's frame: valid only during the
  /// callback.
  const xml::DocumentDelta* delta = nullptr;
  /// Sorted, duplicate-free changed-name set: delta-local names for a
  /// subtree update, the union of the two revisions' cached name sets for a
  /// whole-document replacement, empty for install/removal (which listeners
  /// must treat as all-changed).
  std::vector<std::string> changed_names;
  /// Wall-clock of the subtree splice (ApplyEdit) and the posting-list
  /// splice, for Update() mutations; 0.0 for whole-document mutations (and
  /// index_splice_seconds is 0.0 when the old revision was never indexed).
  /// Reported even in the set_report_deltas(false) baseline — the work
  /// happened either way.
  double splice_seconds = 0.0;
  double index_splice_seconds = 0.0;

  bool replacement() const {
    return old_doc != nullptr && new_doc != nullptr;
  }
};

class DocumentStore {
 public:
  /// Observes corpus mutations. Called outside the store mutex, after the
  /// store reflects the change.
  using UpdateListener = std::function<void(const CorpusUpdate&)>;

  /// Installs the mutation observer. Not thread-safe against concurrent
  /// mutations — set it once, before traffic (the QueryService does this in
  /// its constructor).
  void SetUpdateListener(UpdateListener listener) {
    listener_ = std::move(listener);
  }

  /// Baseline switch for experiments: when false, Update() still applies
  /// the subtree patch (and still splices the index) but REPORTS it as a
  /// whole-document replacement — null delta, whole-document changed-name
  /// union — so downstream invalidation degrades to the document×name
  /// precision a whole-document Put would get. Set once, before traffic.
  void set_report_deltas(bool report) { report_deltas_ = report; }

  /// Registers (or replaces) a document under `key`. Empty documents are
  /// rejected: they have no root context to evaluate in.
  Status Put(std::string key, xml::Document doc);

  /// Parses `xml` and registers the result under `key`.
  Status PutXml(std::string key, std::string_view xml);

  /// Parses `xml` with the one-pass streaming arena parser and registers the
  /// result under `key`. The posting lists built during the parse are
  /// adopted as the stored document's index, so the first query pays neither
  /// a DOM intermediate nor an index-building document walk.
  Status PutXmlStreamed(std::string key, std::string_view xml);

  /// Memory-maps the arena snapshot at `path` (xml/snapshot.hpp) and
  /// registers the mapped document under `key`. The document serves queries
  /// straight out of the mapping — no parse, no copy, page-fault-bound cold
  /// start.
  Status PutSnapshot(std::string key, const std::string& path);

  /// Applies a subtree edit to the current revision of `key` (see the
  /// header comment). Fails if the key is absent or the edit is invalid
  /// for the current revision.
  Status Update(std::string_view key, const xml::SubtreeEdit& edit);

  /// The stored document, or nullptr if the key is unknown. Heterogeneous
  /// lookup: no temporary std::string on this hot path.
  std::shared_ptr<const StoredDocument> Get(std::string_view key) const;

  /// Removes a key; returns false if it was absent. In-flight users of the
  /// document keep their shared_ptr.
  bool Remove(std::string_view key);

  /// Registered keys, sorted.
  std::vector<std::string> Keys() const;

  size_t size() const;

  // ---------------------------------------------------------- durability
  /// Attaches the write-ahead log. Once attached, every successful mutation
  /// appends its record inside the install critical section — at the moment
  /// the revision is assigned, so journal order IS revision order — and the
  /// mutating call blocks (outside the lock) until the record's group-
  /// commit batch is durable. A mutation whose WaitDurable fails is
  /// installed in memory but reported as failed; the WAL's I/O error is
  /// sticky, so the service is effectively read-only from then on. Attach
  /// once, before traffic (QueryService does this after recovery).
  void AttachWal(wal::Wal* wal) { wal_ = wal; }

  /// The most recently assigned revision id — the checkpoint watermark.
  int64_t last_revision() const;

  // Recovery entry points (wal::Wal replay only): install state carrying
  // pre-assigned revisions, bypassing both the log and the listener.
  void RecoverPut(std::string key, xml::Document doc, int64_t revision);
  Status RecoverUpdate(std::string_view key, const xml::SubtreeEdit& edit,
                       int64_t revision);
  bool RecoverRemove(std::string_view key);
  /// Raises the revision counter to at least `floor`, so post-recovery
  /// mutations can never reuse a revision id a pre-crash observer saw.
  void RestoreRevisionFloor(int64_t floor);

 private:
  /// Sorted union of the two revisions' cached name sets.
  static std::vector<std::string> UnionNameSets(const StoredDocument& before,
                                                const StoredDocument& after);

  /// Stamps the next revision onto `stored`, installs it under `key`
  /// (logging through the WAL when attached), and fires the listener.
  /// Shared tail of every Put* flavor.
  Status Install(std::string key, std::shared_ptr<StoredDocument> stored);

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const StoredDocument>,
                     TransparentStringHash, std::equal_to<>>
      docs_;
  /// The single store-wide revision authority (guarded by mu_): every
  /// mutation draws its id inside the install critical section, which is
  /// what lets the WAL stamp records in exactly install order.
  int64_t last_revision_ = 0;
  wal::Wal* wal_ = nullptr;
  UpdateListener listener_;
  bool report_deltas_ = true;
};

}  // namespace gkx::service

#endif  // GKX_SERVICE_DOCUMENT_STORE_HPP_
