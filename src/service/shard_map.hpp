// Stable document-key → shard partitioning. The map is a pure function of
// the key bytes and the shard count: FNV-1a 64 reduced mod N. Stability is
// a durability contract, not an implementation detail — per-shard WAL
// directories are laid out by shard index, so a key must land on the same
// shard across process restarts, library versions, and platforms for
// recovery to find its journal. The fingerprint constants are therefore
// pinned by golden values in shard_service_test.cpp; changing them is a
// data-format break.

#ifndef GKX_SERVICE_SHARD_MAP_HPP_
#define GKX_SERVICE_SHARD_MAP_HPP_

#include <cstdint>
#include <string_view>

#include "base/check.hpp"

namespace gkx::service {

class ShardMap {
 public:
  explicit ShardMap(int shards) : shards_(shards) { GKX_CHECK(shards >= 1); }

  int shards() const { return shards_; }

  int ShardOf(std::string_view key) const {
    return static_cast<int>(Fingerprint(key) %
                            static_cast<uint64_t>(shards_));
  }

  /// FNV-1a 64 over the key bytes. Deliberately boring: documented
  /// constants, byte-order independent, trivially reimplementable by any
  /// future out-of-process router that needs to agree on placement.
  static constexpr uint64_t Fingerprint(std::string_view key) {
    uint64_t hash = kOffsetBasis;
    for (char c : key) {
      hash ^= static_cast<uint8_t>(c);
      hash *= kPrime;
    }
    return hash;
  }

  static constexpr uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr uint64_t kPrime = 1099511628211ull;

 private:
  int shards_;
};

}  // namespace gkx::service

#endif  // GKX_SERVICE_SHARD_MAP_HPP_
