// The serving facade — the first long-lived, stateful layer above
// eval::Engine. A QueryService owns
//   * a DocumentStore: named documents registered once, evaluated many
//     times, each with a lazily-built DocumentIndex and a store-wide
//     monotonic revision id;
//   * a PlanCache: compiled plan::Physical plans shared across requests and
//     documents (shard-locked LRU, canonical-form aliasing);
//   * an mview::AnswerCache: fully evaluated answers keyed by
//     (document, revision, canonical plan), invalidated per plan footprint
//     when documents churn (see mview/answer_cache.hpp);
//   * an mview::SubscriptionManager: standing queries that push diffed
//     answers to callbacks on churn instead of being re-polled;
//   * a ThreadPool: SubmitBatch fans requests out over it, and subscription
//     re-evaluations run on it (the same pool the parallel PDA evaluator
//     uses — nesting is safe, see base/thread_pool.hpp).
//
// Request flow: Submit(doc_key, query)
//   1. document lookup (shared_ptr — removal never races an evaluation),
//   2. plan lookup/compile in the PlanCache (repeat queries skip
//      lex/parse/classify),
//   3. answer-cache lookup by (doc, revision, canonical plan) — a hit skips
//      evaluation entirely and is byte-identical to running the plan,
//   4. on miss, dispatch: the indexed PF fast path when the plan's shape
//      allows it (evaluator label "pf-indexed"), otherwise the
//      fragment-chosen engine exactly as Engine::Run would; the fresh
//      answer is inserted into the answer cache.
// Answer *values* are identical to a fresh Engine::Run of the same text.
// The fragment report and evaluator label describe the cached plan, which
// is compiled from the query's canonical (optimized) form — so a
// pessimized spelling can legitimately report a smaller fragment and a
// cheaper engine ("pf-indexed" on the fast path) than its surface syntax.
// A cached answer reports the evaluator label it was produced with.
//
// Thread safety: every public method may be called concurrently.

#ifndef GKX_SERVICE_QUERY_SERVICE_HPP_
#define GKX_SERVICE_QUERY_SERVICE_HPP_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.hpp"
#include "base/thread_pool.hpp"
#include "eval/engine.hpp"
#include "mview/answer_cache.hpp"
#include "mview/subscription.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/document_store.hpp"
#include "service/plan_cache.hpp"
#include "service/stats.hpp"
#include "wal/wal.hpp"

namespace gkx::obs::json {
class Value;
}  // namespace gkx::obs::json

namespace gkx::service {

/// A point-in-time stats snapshot.
struct ServiceStats {
  int64_t requests = 0;  // Submit calls + batched requests
  int64_t batches = 0;   // SubmitBatch calls
  int64_t failures = 0;  // requests that returned a non-OK status
  size_t documents = 0;
  size_t plan_cache_entries = 0;
  PlanCache::Counters plan_cache;
  /// Materialized answers: answer_cache.{hits,misses,invalidations,bytes,
  /// retained,evictions,entries}. When the cache is disabled every field
  /// stays 0.
  bool answer_cache_enabled = false;
  mview::AnswerCache::Counters answer_cache;
  /// Standing queries: subscriptions.{active,fired,coalesced,
  /// skipped_disjoint,evaluations}.
  mview::SubscriptionManager::Counters subscriptions;
  std::map<std::string, int64_t> evaluator_counts;
  /// How often each route executed as a plan *segment*: a hybrid plan
  /// counts one increment per segment ("pf-frontier", "core-linear",
  /// "cvt"), a uniform plan counts as its single whole-query segment, the
  /// index fast path as "pf-indexed". Answer-cache hits execute nothing and
  /// increment no segment counter (their evaluator label still counts in
  /// evaluator_counts), so Σ segment counts tracks *evaluated* requests.
  std::map<std::string, int64_t> segment_route_counts;
  /// Per-route execution-latency summaries, keyed exactly like
  /// segment_route_counts. Populated only while tracing is active; when it
  /// has been active since construction, each route's summary count equals
  /// its segment_route_counts entry (the soak harness reconciles this).
  std::map<std::string, obs::HistogramSummary> route_latency;
  /// Whether per-stage/per-route tracing is active (Options::obs.tracing
  /// and not compiled out via GKX_OBS_DISABLED).
  bool tracing = false;
  /// Segments dispatched by staged (hybrid) evaluated plans — the subset of
  /// Σ segment_route_counts that went through the staged executor.
  int64_t staged_segments = 0;
  /// How those staged segments actually executed (see plan/exec.hpp).
  /// Invariant, checked by the soak reconciliation and check_stats_json:
  /// parallel + sequential + skipped == staged_segments, exactly — also
  /// when segments execute concurrently.
  int64_t exec_parallel_segments = 0;
  int64_t exec_sequential_segments = 0;
  int64_t exec_skipped_segments = 0;
  /// Requests that crossed the slow-query threshold (including entries the
  /// bounded log has since evicted).
  int64_t slow_queries = 0;
  /// All-time total request latency (always recorded, even with tracing
  /// off or compiled out): count == requests - failures.
  LatencySummary latency;
};

class QueryService {
 public:
  struct Options {
    PlanCache::Options plan_cache;
    /// Materialized answer cache (see mview/answer_cache.hpp). Enabled by
    /// default; disable to measure raw evaluation throughput.
    bool answer_cache_enabled = true;
    mview::AnswerCache::Options answer_cache;
    /// Region×name invalidation for subtree updates (the delta pipeline).
    /// When false, UpdateDocument still applies patches (and still splices
    /// indexes) but churn is reported to the mview layer as whole-document
    /// replacement — the PR-4 name-only baseline, kept measurable for
    /// EXP-DELTA and differential soaks.
    bool delta_invalidation = true;
    /// Pool for SubmitBatch and subscription re-evaluation (and, via the
    /// engines, parallel evaluation); nullptr = ThreadPool::Shared().
    ThreadPool* pool = nullptr;
    /// Concurrent workers per batch; 0 = pool width (the calling thread
    /// always participates).
    int batch_workers = 0;
    /// Answer eligible PF queries from the DocumentIndex ("pf-indexed").
    bool indexed_fast_path = true;
    /// Intra-query parallelism (plan/exec.hpp): workers > 1 partitions
    /// bitset sweeps and cvt origin loops of each request across the pool.
    /// exec.pool == nullptr uses the service pool. Answers are identical at
    /// any setting; only latency changes.
    plan::ExecOptions exec;
    /// Request tracing: per-stage/per-route histograms and the slow-query
    /// log (see obs/trace.hpp). Total request latency is recorded into the
    /// all-time histogram regardless. Building with -DGKX_OBS_DISABLED
    /// compiles the per-stage tracing out entirely.
    obs::TraceOptions obs;
    /// Test-only fault-injection hook: invoked on every successful answer
    /// (after dispatch or answer-cache hit, before counters/latency are
    /// recorded) and may mutate it to simulate an engine defect. The soak
    /// harness uses this to prove its oracle catches semantic divergences.
    /// Fresh answers are cached *before* the tap runs, so the cache holds
    /// true answers and the tap perturbs every serve alike. Must be
    /// thread-safe. nullptr (the default) = production behaviour.
    std::function<void(eval::Engine::Answer* answer)> answer_tap;
    /// Durability (src/wal/wal.hpp). Non-empty = open a write-ahead log in
    /// this directory at construction: recover whatever a previous
    /// incarnation persisted there (checkpoint snapshots + journal replay,
    /// torn tail truncated), then journal every subsequent corpus mutation
    /// before it is acknowledged. Empty (the default) = in-memory only.
    /// If open/recovery fails the service still constructs and serves — in
    /// memory, without a WAL — and wal_status() carries the reason.
    std::string wal_dir;
    /// WAL tuning (group-commit window, fsync, checkpoint threshold).
    /// `wal.dir` is ignored; wal_dir above is the switch and the path.
    wal::WalOptions wal;
  };

  struct Request {
    std::string doc_key;
    std::string query;
  };

  using Answer = eval::Engine::Answer;

  QueryService() : QueryService(Options{}) {}
  explicit QueryService(const Options& options);

  // -------------------------------------------------------------- corpus
  /// Registers (or replaces) a parsed document. Replacement invalidates
  /// affected answer-cache entries and wakes affected subscriptions.
  Status RegisterDocument(std::string key, xml::Document doc);
  /// Parses and registers.
  Status RegisterXml(std::string key, std::string_view xml);
  /// Applies a subtree patch to the registered document (xml/edit.hpp):
  /// one O(|D|) splice instead of parse + rebuild, index maintenance by
  /// posting-list splice, and — per the patch's DocumentDelta — answer
  /// cache invalidation and subscription wake-ups scoped to the edited
  /// region's names instead of the whole document's.
  Status UpdateDocument(std::string_view key, const xml::SubtreeEdit& edit);
  bool RemoveDocument(std::string_view key);
  const DocumentStore& documents() const { return store_; }

  // -------------------------------------------------------------- queries
  /// Evaluates one query against one registered document (root context).
  Result<Answer> Submit(const std::string& doc_key,
                        const std::string& query_text);

  /// Evaluates a batch concurrently over the pool. responses[i] corresponds
  /// to requests[i]; per-request failures do not affect other requests.
  std::vector<Result<Answer>> SubmitBatch(const std::vector<Request>& requests);

  // -------------------------------------------------------- subscriptions
  /// Registers a standing query: `doc_selector` is an exact document key or
  /// a trailing-'*' prefix pattern ("doc*", "*"). A trailing '*' ALWAYS
  /// reads as the prefix wildcard — a document key that itself ends in '*'
  /// cannot be selected exactly (see SubscriptionManager::SelectorMatches).
  /// `query_text` must be node-set-typed. The callback receives the initial
  /// answer as a
  /// pure-`added` diff and subsequent churn as added/removed diffs, on pool
  /// threads (see mview/subscription.hpp for ordering and coalescing).
  Result<int64_t> Subscribe(std::string doc_selector,
                            const std::string& query_text,
                            mview::SubscriptionCallback callback);
  /// Stops a standing query; no callbacks fire after this returns.
  bool Unsubscribe(int64_t subscription_id);
  /// Blocks until all subscription evaluations scheduled so far delivered.
  void FlushSubscriptions();

  // -------------------------------------------------------------- admin
  ServiceStats Stats() const;

  /// Serializes the full observability surface — the Stats() snapshot plus
  /// every registered metric, per-route histograms, and the slow-query log.
  /// kJson produces the structured "gkx-stats-v1" document; kText flattens
  /// its numeric leaves into `gkx_section_name value` lines
  /// (Prometheus-style). Implemented in stats_export.cpp.
  std::string ExportStats(StatsFormat format = StatsFormat::kText) const;

  /// The structured stats document ExportStats serializes, as a JSON value.
  /// The sharded router embeds one of these per shard under "shards".
  obs::json::Value ExportStatsDocument() const;

  /// Router support: folds this service's observability state into
  /// cross-shard aggregates — the always-on latency histogram into
  /// `latency`, the per-route execution histograms into `routes`, and the
  /// whole metric registry into `registry` (counters add, histograms merge
  /// bucket-exact). Null destinations are skipped. Safe to call while the
  /// service is serving.
  void MergeObservabilityInto(obs::Histogram* latency,
                              obs::HistogramFamily* routes,
                              obs::MetricRegistry* registry) const;

  /// The slow-query threshold the trace options resolved to.
  double slow_query_threshold_ms() const { return slow_log_.threshold_ms(); }

  /// The most recent slow queries (empty when tracing is off). Newest last.
  std::vector<obs::SlowQuery> SlowQueries() const {
    return slow_log_.Snapshot();
  }

  const PlanCache& plan_cache() const { return plan_cache_; }
  const mview::AnswerCache& answer_cache() const { return answer_cache_; }

  // ----------------------------------------------------------- durability
  /// True when Options::wal_dir was set and the log opened (and recovered)
  /// successfully — every mutation from now on is durable before it is
  /// acknowledged.
  bool wal_enabled() const { return wal_ != nullptr; }
  /// Ok when there is no WAL configured or it opened cleanly; otherwise the
  /// open/recovery error (the service then runs in-memory only).
  const Status& wal_status() const { return wal_status_; }
  /// What recovery found at construction: snapshots loaded, records
  /// replayed/skipped, torn-tail bytes truncated. Zeroes without a WAL.
  const wal::RecoveryReport& wal_recovery() const { return wal_recovery_; }
  /// Forces a checkpoint now (snapshot set + manifest + journal reset) in
  /// the calling thread, independent of the byte-threshold trigger. No-op
  /// Ok without a WAL.
  Status CheckpointNow();
  /// Test hook: drops the WAL's in-memory tail and stops journaling, as a
  /// kill -9 would — acknowledged records stay durable on disk, everything
  /// else is gone. The recovery soak reopens the directory afterwards.
  void CrashWalForTest();

 private:
  /// Full request path; `engine` is the calling worker's private engine.
  Result<Answer> Process(eval::Engine& engine, const std::string& doc_key,
                         const std::string& query_text);

  /// DocumentStore update listener: fans the CorpusUpdate (changed-name
  /// set + optional subtree delta) out to answer-cache invalidation and
  /// subscription scheduling.
  void OnCorpusUpdate(const CorpusUpdate& update);

  Options options_;
  ThreadPool* pool_;  // never null after construction
  DocumentStore store_;
  PlanCache plan_cache_;
  mview::AnswerCache answer_cache_;

  // Observability state. Declared BEFORE subscriptions_: subscription
  // evaluations on pool threads record into these histograms via the
  // evaluation observer, and the manager's destructor quiesces those tasks
  // — so the metrics must be destroyed after it.
  obs::MetricRegistry registry_;
  // Stable pointers into registry_, wired once in the constructor so the
  // request path never takes the registry lock.
  obs::Histogram* latency_hist_;         // always-on total request latency
  /// The sub-microsecond lookup stages (doc / plan / answer-cache lookup)
  /// stamp the clock on every kStageSampleEvery-th request only: a warm
  /// answer-cache hit serves in ~0.5us, so per-request stamps there would
  /// cost tens of percent (bench_obs_overhead holds the bar at < 5%).
  /// Execution-side spans and the route histograms are per-request — they
  /// run only on answer-cache misses, where evaluation amortizes them, and
  /// the route counts must reconcile exactly. Power of two.
  static constexpr int64_t kStageSampleEvery = 64;
  obs::Histogram* stage_doc_lookup_;
  obs::Histogram* stage_plan_lookup_;
  obs::Histogram* stage_answer_cache_lookup_;
  obs::Histogram* stage_execute_;
  obs::Histogram* stage_cache_insert_;
  obs::Counter* update_count_;
  obs::Histogram* update_splice_;
  obs::Histogram* update_index_splice_;
  obs::Histogram* update_affected_scan_;
  obs::Histogram* update_invalidated_;   // kCount: entries per update
  obs::Histogram* update_retained_;
  obs::Histogram* update_remapped_;
  obs::Histogram* update_sub_eval_;
  /// Execution latency per route label, mirroring segment_route_counts.
  obs::HistogramFamily route_hists_;
  obs::SlowQueryLog slow_log_;
  /// Options::obs.tracing && !obs::kCompiledOut, resolved once.
  const bool tracing_;

  mview::SubscriptionManager subscriptions_;  // declared after store_/pool_:
                                              // destroyed first, quiescing
                                              // pool tasks that use them
  EvaluatorCounters evaluator_counters_;
  EvaluatorCounters segment_route_counters_;
  /// Per-segment parallel/sequential/skipped execution counts, shared by
  /// every request engine (Submit and batch workers alike). Subscription
  /// re-evaluations use their own engines and do NOT feed these — the
  /// reconciliation invariant is against staged_segments_, which counts the
  /// same request paths.
  plan::ExecStats exec_stats_;
  std::atomic<int64_t> staged_segments_{0};
  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> failures_{0};

  // Durability. Declared LAST: the Wal destructor joins its committer
  // thread, which records into registry_ metrics — everything above must
  // still be alive while it drains. The store holds a raw wal_ pointer
  // (AttachWal), but by the time wal_ is destroyed no mutations can be in
  // flight (callers of a dying service are already UB).
  Status wal_status_;
  wal::RecoveryReport wal_recovery_;
  std::unique_ptr<wal::Wal> wal_;
};

}  // namespace gkx::service

#endif  // GKX_SERVICE_QUERY_SERVICE_HPP_
