// The serving facade — the first long-lived, stateful layer above
// eval::Engine. A QueryService owns
//   * a DocumentStore: named documents registered once, evaluated many
//     times, each with a lazily-built DocumentIndex;
//   * a PlanCache: compiled {AST, fragment report, evaluator choice} plans
//     shared across requests and documents (shard-locked LRU);
//   * a ThreadPool: SubmitBatch fans requests out over it (the same pool
//     the parallel PDA evaluator uses — nesting is safe, see
//     base/thread_pool.hpp).
//
// Request flow: Submit(doc_key, query)
//   1. document lookup (shared_ptr — removal never races an evaluation),
//   2. plan lookup/compile in the PlanCache (repeat queries skip
//      lex/parse/classify),
//   3. dispatch: the indexed PF fast path when the plan's shape allows it
//      (evaluator label "pf-indexed"), otherwise the fragment-chosen engine
//      exactly as Engine::Run would.
// Answer *values* are identical to a fresh Engine::Run of the same text.
// The fragment report and evaluator label describe the cached plan, which
// is compiled from the query's canonical (optimized) form — so a
// pessimized spelling can legitimately report a smaller fragment and a
// cheaper engine ("pf-indexed" on the fast path) than its surface syntax.
//
// Thread safety: every public method may be called concurrently.

#ifndef GKX_SERVICE_QUERY_SERVICE_HPP_
#define GKX_SERVICE_QUERY_SERVICE_HPP_

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.hpp"
#include "base/thread_pool.hpp"
#include "eval/engine.hpp"
#include "service/document_store.hpp"
#include "service/plan_cache.hpp"
#include "service/stats.hpp"

namespace gkx::service {

/// A point-in-time stats snapshot.
struct ServiceStats {
  int64_t requests = 0;  // Submit calls + batched requests
  int64_t batches = 0;   // SubmitBatch calls
  int64_t failures = 0;  // requests that returned a non-OK status
  size_t documents = 0;
  size_t plan_cache_entries = 0;
  PlanCache::Counters plan_cache;
  std::map<std::string, int64_t> evaluator_counts;
  /// How often each route executed as a plan *segment*: a hybrid plan
  /// counts one increment per segment ("pf-frontier", "core-linear",
  /// "cvt"), a uniform plan counts as its single whole-query segment, the
  /// index fast path as "pf-indexed". Σ segment counts >= Σ evaluator
  /// counts, with equality when no hybrid plan ran.
  std::map<std::string, int64_t> segment_route_counts;
  LatencySummary latency;
};

class QueryService {
 public:
  struct Options {
    PlanCache::Options plan_cache;
    /// Pool for SubmitBatch (and, via the engines, parallel evaluation);
    /// nullptr = ThreadPool::Shared().
    ThreadPool* pool = nullptr;
    /// Concurrent workers per batch; 0 = pool width (the calling thread
    /// always participates).
    int batch_workers = 0;
    /// Answer eligible PF queries from the DocumentIndex ("pf-indexed").
    bool indexed_fast_path = true;
    /// Latency reservoir size.
    size_t latency_window = 4096;
    /// Test-only fault-injection hook: invoked on every successful answer
    /// (after dispatch, before counters/latency are recorded) and may mutate
    /// it to simulate an engine defect. The soak harness uses this to prove
    /// its oracle catches semantic divergences. Must be thread-safe.
    /// nullptr (the default) = production behaviour, zero overhead.
    std::function<void(eval::Engine::Answer* answer)> answer_tap;
  };

  struct Request {
    std::string doc_key;
    std::string query;
  };

  using Answer = eval::Engine::Answer;

  QueryService() : QueryService(Options{}) {}
  explicit QueryService(const Options& options);

  // -------------------------------------------------------------- corpus
  /// Registers (or replaces) a parsed document.
  Status RegisterDocument(std::string key, xml::Document doc);
  /// Parses and registers.
  Status RegisterXml(std::string key, std::string_view xml);
  bool RemoveDocument(std::string_view key);
  const DocumentStore& documents() const { return store_; }

  // -------------------------------------------------------------- queries
  /// Evaluates one query against one registered document (root context).
  Result<Answer> Submit(const std::string& doc_key,
                        const std::string& query_text);

  /// Evaluates a batch concurrently over the pool. responses[i] corresponds
  /// to requests[i]; per-request failures do not affect other requests.
  std::vector<Result<Answer>> SubmitBatch(const std::vector<Request>& requests);

  // -------------------------------------------------------------- admin
  ServiceStats Stats() const;
  const PlanCache& plan_cache() const { return plan_cache_; }

 private:
  /// Full request path; `engine` is the calling worker's private engine.
  Result<Answer> Process(eval::Engine& engine, const std::string& doc_key,
                         const std::string& query_text);

  Options options_;
  ThreadPool* pool_;  // never null after construction
  DocumentStore store_;
  PlanCache plan_cache_;
  EvaluatorCounters evaluator_counters_;
  EvaluatorCounters segment_route_counters_;
  LatencyRecorder latency_;
  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> failures_{0};
};

}  // namespace gkx::service

#endif  // GKX_SERVICE_QUERY_SERVICE_HPP_
