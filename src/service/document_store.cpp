#include "service/document_store.hpp"

#include <algorithm>
#include <iterator>
#include <utility>

#include "base/stopwatch.hpp"
#include "wal/wal.hpp"
#include "xml/parser.hpp"
#include "xml/snapshot.hpp"
#include "xml/stream_parser.hpp"

namespace gkx::service {

StoredDocument::StoredDocument(xml::Document doc, int64_t revision)
    : doc_(std::move(doc)), revision_(revision) {
  // Cached once: churn events union two cached vectors instead of
  // re-sorting intern pools per mutation. The pool is a superset of the
  // present names only for spliced documents (see Document::InternedNames);
  // AdoptIndex tightens it when a spliced index is at hand anyway.
  name_set_ = doc_.InternedNames();
  std::sort(name_set_.begin(), name_set_.end());
}

const xml::DocumentIndex& StoredDocument::index() const {
  const xml::DocumentIndex* built =
      index_ptr_.load(std::memory_order_acquire);
  if (built != nullptr) return *built;
  std::lock_guard<std::mutex> lock(index_mu_);
  if (index_ == nullptr) {
    index_ = std::make_unique<xml::DocumentIndex>(doc_);
  }
  index_ptr_.store(index_.get(), std::memory_order_release);
  return *index_;
}

bool StoredDocument::index_built() const {
  return index_ptr_.load(std::memory_order_acquire) != nullptr;
}

void StoredDocument::AdoptIndex(std::unique_ptr<xml::DocumentIndex> index) {
  GKX_CHECK(index != nullptr && &index->doc() == &doc_);
  name_set_ = index->PresentNames();  // exact, where the pool is a superset
  index_ = std::move(index);
  index_ptr_.store(index_.get(), std::memory_order_release);
}

std::vector<std::string> DocumentStore::UnionNameSets(
    const StoredDocument& before, const StoredDocument& after) {
  std::vector<std::string> out;
  out.reserve(before.NameSet().size() + after.NameSet().size());
  std::set_union(before.NameSet().begin(), before.NameSet().end(),
                 after.NameSet().begin(), after.NameSet().end(),
                 std::back_inserter(out));
  return out;
}

Status DocumentStore::Put(std::string key, xml::Document doc) {
  if (doc.empty()) {
    return InvalidArgumentError("cannot register empty document under key '" +
                                key + "'");
  }
  return Install(std::move(key),
                 std::make_shared<StoredDocument>(std::move(doc)));
}

Status DocumentStore::Install(std::string key,
                              std::shared_ptr<StoredDocument> stored) {
  // The expensive WAL record encoding (a whole-document snapshot) happens
  // before the lock; only the revision stamp + buffer append go inside.
  wal::Wal::PendingRecord record;
  if (wal_ != nullptr) record = wal::Wal::MakePut(key, stored->doc());
  std::shared_ptr<const StoredDocument> old;
  wal::Wal::Ticket ticket;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stored->revision_ = ++last_revision_;
    if (wal_ != nullptr) {
      ticket = wal_->Enqueue(std::move(record), stored->revision_);
    }
    auto& slot = docs_[key];
    old = std::move(slot);
    slot = stored;
  }
  if (wal_ != nullptr) GKX_RETURN_IF_ERROR(wal_->WaitDurable(ticket));
  if (listener_) {
    CorpusUpdate update;
    update.key = std::move(key);
    update.old_doc = std::move(old);
    update.new_doc = std::move(stored);
    if (update.replacement()) {
      update.changed_names = UnionNameSets(*update.old_doc, *update.new_doc);
    }
    listener_(update);
  }
  return Status::Ok();
}

Status DocumentStore::PutXml(std::string key, std::string_view xml) {
  auto doc = xml::ParseDocument(xml);
  if (!doc.ok()) return doc.status();
  return Put(std::move(key), std::move(doc).value());
}

Status DocumentStore::PutXmlStreamed(std::string key, std::string_view xml) {
  auto parsed = xml::ParseDocumentStream(xml);
  if (!parsed.ok()) return parsed.status();
  if (parsed->doc.empty()) {
    return InvalidArgumentError("cannot register empty document under key '" +
                                key + "'");
  }
  auto stored = std::make_shared<StoredDocument>(std::move(parsed->doc));
  // The parse already built the posting lists; adopt them so the first
  // query pays no index-building walk.
  stored->AdoptIndex(std::make_unique<xml::DocumentIndex>(
      stored->doc(), std::move(parsed->postings)));
  return Install(std::move(key), std::move(stored));
}

Status DocumentStore::PutSnapshot(std::string key, const std::string& path) {
  auto doc = xml::MapSnapshot(path);
  if (!doc.ok()) return doc.status();
  if (doc->empty()) {
    return InvalidArgumentError("cannot register empty snapshot under key '" +
                                key + "'");
  }
  return Put(std::move(key), std::move(doc).value());
}

Status DocumentStore::Update(std::string_view key,
                             const xml::SubtreeEdit& edit) {
  // Encoded once, outside the retry loop and every lock: the edit is the
  // caller's constant, so a retried splice reuses the same record body. It
  // is enqueued only when this attempt wins the install race — an
  // abandoned attempt must leave no journal trace.
  wal::Wal::PendingRecord record;
  if (wal_ != nullptr) record = wal::Wal::MakeUpdate(key, edit);
  for (;;) {
    std::shared_ptr<const StoredDocument> old;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = docs_.find(key);
      if (it == docs_.end()) {
        return InvalidArgumentError("cannot update unknown document key '" +
                             std::string(key) + "'");
      }
      old = it->second;
    }

    // The O(|D|) work — splice and (when warranted) index splice — happens
    // against the snapshot, outside the mutex.
    xml::DocumentDelta delta;
    Stopwatch splice_sw;
    auto edited = xml::ApplyEdit(old->doc(), edit, &delta);
    const double splice_seconds = splice_sw.ElapsedSeconds();
    if (!edited.ok()) return edited.status();
    auto stored = std::make_shared<StoredDocument>(std::move(edited).value());
    double index_splice_seconds = 0.0;
    if (old->index_built()) {
      // The old revision was queried: splice its posting lists so the next
      // query on the new revision pays no full rebuild either.
      Stopwatch index_sw;
      stored->AdoptIndex(std::make_unique<xml::DocumentIndex>(
          stored->doc(), old->index(), delta));
      index_splice_seconds = index_sw.ElapsedSeconds();
    }

    wal::Wal::Ticket ticket;
    bool logged = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = docs_.find(key);
      if (it == docs_.end() || it->second != old) {
        // A racing Put/Remove/Update changed the base revision under us:
        // the splice is stale, redo it against the current state. (No
        // revision was drawn for the abandoned attempt — ids are assigned
        // only at install, so monotonicity holds trivially.)
        continue;
      }
      stored->revision_ = ++last_revision_;
      if (wal_ != nullptr) {
        ticket = wal_->Enqueue(std::move(record), stored->revision_);
        logged = true;
      }
      it->second = stored;
    }
    if (logged) GKX_RETURN_IF_ERROR(wal_->WaitDurable(ticket));

    if (listener_) {
      CorpusUpdate update;
      update.key = std::string(key);
      update.old_doc = std::move(old);
      update.new_doc = std::move(stored);
      update.splice_seconds = splice_seconds;
      update.index_splice_seconds = index_splice_seconds;
      if (report_deltas_) {
        update.delta = &delta;
        update.changed_names = delta.ChangedNames();
      } else {
        // Baseline reporting: pretend this was a whole-document Put.
        update.changed_names =
            UnionNameSets(*update.old_doc, *update.new_doc);
      }
      listener_(update);
    }
    return Status::Ok();
  }
}

std::shared_ptr<const StoredDocument> DocumentStore::Get(
    std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = docs_.find(key);
  return it == docs_.end() ? nullptr : it->second;
}

bool DocumentStore::Remove(std::string_view key) {
  wal::Wal::PendingRecord record;
  if (wal_ != nullptr) record = wal::Wal::MakeRemove(key);
  std::shared_ptr<const StoredDocument> old;
  wal::Wal::Ticket ticket;
  bool logged = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = docs_.find(key);
    if (it == docs_.end()) return false;
    old = std::move(it->second);
    docs_.erase(it);
    if (wal_ != nullptr) {
      // Removal burns a revision so its journal record is totally ordered
      // against Put/Update records for the same key at replay time.
      ticket = wal_->Enqueue(std::move(record), ++last_revision_);
      logged = true;
    }
  }
  if (logged) {
    // The bool signature has no error channel; a durability failure is
    // sticky in the WAL and surfaces on the next Status-returning mutation
    // (and via QueryService::wal_status-style probes).
    (void)wal_->WaitDurable(ticket);
  }
  if (listener_) {
    CorpusUpdate update;
    update.key = std::string(key);
    update.old_doc = std::move(old);
    listener_(update);
  }
  return true;
}

int64_t DocumentStore::last_revision() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_revision_;
}

void DocumentStore::RecoverPut(std::string key, xml::Document doc,
                               int64_t revision) {
  auto stored = std::make_shared<const StoredDocument>(std::move(doc), revision);
  std::lock_guard<std::mutex> lock(mu_);
  if (revision > last_revision_) last_revision_ = revision;
  docs_[std::move(key)] = std::move(stored);
}

Status DocumentStore::RecoverUpdate(std::string_view key,
                                    const xml::SubtreeEdit& edit,
                                    int64_t revision) {
  // Replay is single-threaded and pre-traffic: no install race to guard.
  std::shared_ptr<const StoredDocument> old = Get(key);
  if (old == nullptr) {
    return InvalidArgumentError(
        "wal replay: update record for unknown document key '" +
        std::string(key) + "'");
  }
  auto edited = xml::ApplyEdit(old->doc(), edit);
  if (!edited.ok()) {
    return InternalError("wal replay: edit for key '" + std::string(key) +
                         "' no longer applies: " + edited.status().message());
  }
  RecoverPut(std::string(key), std::move(edited).value(), revision);
  return Status::Ok();
}

bool DocumentStore::RecoverRemove(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = docs_.find(key);
  if (it == docs_.end()) return false;
  docs_.erase(it);
  return true;
}

void DocumentStore::RestoreRevisionFloor(int64_t floor) {
  std::lock_guard<std::mutex> lock(mu_);
  if (floor > last_revision_) last_revision_ = floor;
}

std::vector<std::string> DocumentStore::Keys() const {
  std::vector<std::string> keys;
  {
    std::lock_guard<std::mutex> lock(mu_);
    keys.reserve(docs_.size());
    for (const auto& [key, stored] : docs_) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

size_t DocumentStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return docs_.size();
}

}  // namespace gkx::service
