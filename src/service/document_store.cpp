#include "service/document_store.hpp"

#include <algorithm>
#include <utility>

#include "xml/parser.hpp"

namespace gkx::service {

const xml::DocumentIndex& StoredDocument::index() const {
  std::call_once(index_once_, [this] {
    index_ = std::make_unique<xml::DocumentIndex>(doc_);
    index_built_.store(true, std::memory_order_release);
  });
  return *index_;
}

bool StoredDocument::index_built() const {
  return index_built_.load(std::memory_order_acquire);
}

std::vector<std::string> StoredDocument::NameSet() const {
  if (index_built()) return index().PresentNames();
  std::vector<std::string> names = doc_.InternedNames();
  std::sort(names.begin(), names.end());
  return names;
}

Status DocumentStore::Put(std::string key, xml::Document doc) {
  if (doc.empty()) {
    return InvalidArgumentError("cannot register empty document under key '" +
                                key + "'");
  }
  auto stored = std::make_shared<const StoredDocument>(
      std::move(doc), next_revision_.fetch_add(1, std::memory_order_relaxed));
  std::shared_ptr<const StoredDocument> old;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = docs_[key];
    old = std::move(slot);
    slot = stored;
  }
  if (listener_) listener_(key, old, stored);
  return Status::Ok();
}

Status DocumentStore::PutXml(std::string key, std::string_view xml) {
  auto doc = xml::ParseDocument(xml);
  if (!doc.ok()) return doc.status();
  return Put(std::move(key), std::move(doc).value());
}

std::shared_ptr<const StoredDocument> DocumentStore::Get(
    std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = docs_.find(std::string(key));
  return it == docs_.end() ? nullptr : it->second;
}

bool DocumentStore::Remove(std::string_view key) {
  std::string key_string(key);
  std::shared_ptr<const StoredDocument> old;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = docs_.find(key_string);
    if (it == docs_.end()) return false;
    old = std::move(it->second);
    docs_.erase(it);
  }
  if (listener_) listener_(key_string, old, nullptr);
  return true;
}

std::vector<std::string> DocumentStore::Keys() const {
  std::vector<std::string> keys;
  {
    std::lock_guard<std::mutex> lock(mu_);
    keys.reserve(docs_.size());
    for (const auto& [key, stored] : docs_) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

size_t DocumentStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return docs_.size();
}

}  // namespace gkx::service
