#include "service/document_store.hpp"

#include <algorithm>
#include <utility>

#include "xml/parser.hpp"

namespace gkx::service {

const xml::DocumentIndex& StoredDocument::index() const {
  std::call_once(index_once_, [this] {
    index_ = std::make_unique<xml::DocumentIndex>(doc_);
    index_built_.store(true, std::memory_order_release);
  });
  return *index_;
}

bool StoredDocument::index_built() const {
  return index_built_.load(std::memory_order_acquire);
}

Status DocumentStore::Put(std::string key, xml::Document doc) {
  if (doc.empty()) {
    return InvalidArgumentError("cannot register empty document under key '" +
                                key + "'");
  }
  auto stored = std::make_shared<const StoredDocument>(std::move(doc));
  std::lock_guard<std::mutex> lock(mu_);
  docs_[std::move(key)] = std::move(stored);
  return Status::Ok();
}

Status DocumentStore::PutXml(std::string key, std::string_view xml) {
  auto doc = xml::ParseDocument(xml);
  if (!doc.ok()) return doc.status();
  return Put(std::move(key), std::move(doc).value());
}

std::shared_ptr<const StoredDocument> DocumentStore::Get(
    std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = docs_.find(std::string(key));
  return it == docs_.end() ? nullptr : it->second;
}

bool DocumentStore::Remove(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  return docs_.erase(std::string(key)) > 0;
}

std::vector<std::string> DocumentStore::Keys() const {
  std::vector<std::string> keys;
  {
    std::lock_guard<std::mutex> lock(mu_);
    keys.reserve(docs_.size());
    for (const auto& [key, stored] : docs_) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

size_t DocumentStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return docs_.size();
}

}  // namespace gkx::service
