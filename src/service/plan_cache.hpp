// The compile half of the query service: an LRU cache from query text to
// compiled physical plans (plan::Physical — normalize + per-subexpression
// classification + segment lowering; see plan/ir.hpp). A plan is
// document-independent, so one cache serves every registered document.
//
// Two-level keying. A lookup first tries the raw query text — a hit skips
// the whole compile pipeline (`hits`). On a raw miss the text is parsed and
// normalized (plan::Normalize — the same canonical form
// xpath::CanonicalXPathString prints); if an equivalent spelling was
// compiled before, that plan is reused (`canonical_hits` — the parse and
// normalize happened, but classification/lowering and the plan slot are
// shared) and the raw text is inserted as an alias so the next lookup is a
// first-level hit.
//
// Every spelling in an equivalence class shares ONE plan, compiled from the
// canonical (optimized) AST. Values are identical to evaluating the raw
// text — Optimize is semantics-preserving (the metamorphic suite's
// invariant) — and canonicalization may land the class in a *smaller*
// fragment than a pessimized spelling ("/descendant::a[true()]" runs as
// PF "/descendant::a"), so the plan's fragment report and evaluator choice
// describe the canonical form, not the surface syntax.
//
// Thread safety: buckets are sharded by key hash, one mutex per shard, so
// concurrent Submits on different queries rarely contend. Plans are handed
// out as shared_ptr<const Plan>; eviction never invalidates in-flight users.

#ifndef GKX_SERVICE_PLAN_CACHE_HPP_
#define GKX_SERVICE_PLAN_CACHE_HPP_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.hpp"
#include "eval/engine.hpp"

namespace gkx::service {

class PlanCache {
 public:
  struct Options {
    /// Maximum cached entries (aliases count as entries), across all shards.
    size_t capacity = 512;
    /// Number of independently locked buckets.
    size_t shards = 8;
    /// Observation hook: called with each evicted key, after the shard lock
    /// is released (so the callback may re-enter the cache). Must be
    /// thread-safe; the soak harness uses it to reconcile the eviction
    /// counter against observed evictions. nullptr = no observation.
    std::function<void(const std::string& evicted_key)> on_evict;
  };

  struct Counters {
    int64_t hits = 0;            // raw-text hits (no parse at all)
    int64_t canonical_hits = 0;  // parsed, but plan shared via canonical key
    int64_t misses = 0;          // full compile
    int64_t parse_failures = 0;  // compile failed (nothing cached)
    int64_t evictions = 0;

    int64_t Lookups() const {
      return hits + canonical_hits + misses + parse_failures;
    }
    double HitRate() const {
      const int64_t lookups = Lookups();
      return lookups == 0
                 ? 0.0
                 : static_cast<double>(hits + canonical_hits) /
                       static_cast<double>(lookups);
    }
  };

  PlanCache() : PlanCache(Options{}) {}
  explicit PlanCache(const Options& options);

  /// The cached plan for `query_text`, compiling and caching on miss.
  /// Parse errors are returned (and counted) but not cached.
  Result<std::shared_ptr<const eval::Engine::Plan>> GetOrCompile(
      const std::string& query_text);

  /// Raw-text lookup only; nullptr on miss. Bumps LRU but not counters.
  std::shared_ptr<const eval::Engine::Plan> Peek(const std::string& query_text);

  Counters counters() const;

  /// Entries currently cached (including aliases).
  size_t size() const;

  /// Hard bound on size(): per-shard capacity × shard count. May round the
  /// configured capacity up so every shard holds at least one entry.
  size_t capacity_bound() const { return per_shard_capacity_ * shards_.size(); }

  void Clear();

 private:
  using PlanPtr = std::shared_ptr<const eval::Engine::Plan>;

  struct Entry {
    std::string key;
    PlanPtr plan;
  };

  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> map;
  };

  Shard& ShardFor(const std::string& key);

  /// Looks `key` up in its shard; bumps LRU on hit.
  PlanPtr Lookup(const std::string& key);

  /// Inserts (or refreshes) key -> plan, evicting LRU entries over capacity.
  /// Returns the resident plan (an existing entry wins races).
  PlanPtr Insert(const std::string& key, PlanPtr plan);

  size_t per_shard_capacity_ = 0;
  std::function<void(const std::string&)> on_evict_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> canonical_hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> parse_failures_{0};
  std::atomic<int64_t> evictions_{0};
};

}  // namespace gkx::service

#endif  // GKX_SERVICE_PLAN_CACHE_HPP_
