// Index-accelerated evaluation for the bread-and-butter PF shapes
// (/descendant::a/child::b, //a//b, unions of such paths). Where the
// pf-frontier engine sweeps one O(|D|) bitset image per step, this path
// answers name-tested descendant steps with binary-search range scans over
// the DocumentIndex posting lists — O(frontier · log |D| + answer) — which
// is the difference between touching every node and touching only matching
// ones on large documents with selective tags.
//
// Strictly a fast path: TryIndexedPath returns nullopt for anything outside
// the supported shape (reverse/sibling/parent axes, predicates, non-path
// roots) and the caller falls back to the regular engine. When it does
// answer, the node set is byte-identical to pf-frontier's (document order,
// duplicate-free) — the service's differential tests pin this.

#ifndef GKX_SERVICE_INDEXED_PATH_HPP_
#define GKX_SERVICE_INDEXED_PATH_HPP_

#include <optional>

#include "eval/node_set.hpp"
#include "xml/index.hpp"
#include "xpath/ast.hpp"

namespace gkx::service {

/// Evaluates `query` from the context node `origin` (relative paths start
/// there; absolute paths start at the root regardless). Returns nullopt if
/// the query falls outside the supported PF subset:
///   * root is a PathExpr or a union of PathExprs,
///   * every step is predicate-free on self/child/descendant/
///     descendant-or-self,
///   * the '//' idiom descendant-or-self::node()/child::t is fused into
///     descendant::t (same rewrite Optimize performs; sound because PF has
///     no positional predicates).
std::optional<eval::NodeSet> TryIndexedPath(const xml::DocumentIndex& index,
                                            const xpath::Query& query,
                                            xml::NodeId origin = 0);

}  // namespace gkx::service

#endif  // GKX_SERVICE_INDEXED_PATH_HPP_
