// The "gkx-stats-v1" document builder, decoupled from which service owns
// the inputs: a QueryService exports its own snapshot; the
// ShardedQueryService router exports the cross-shard aggregate (histograms
// merged bucket-exact, counters summed) plus one sub-document per shard
// under "shards". Keeping one builder is what keeps the aggregate and the
// per-shard breakdowns structurally identical — tools/check_stats_json
// validates both with the same code.

#ifndef GKX_SERVICE_STATS_JSON_HPP_
#define GKX_SERVICE_STATS_JSON_HPP_

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/query_service.hpp"
#include "service/stats.hpp"

namespace gkx::service {

struct StatsExportInputs {
  ServiceStats stats;
  double slow_query_threshold_ms = 0.0;
  std::vector<obs::SlowQuery> slow_queries;
  const obs::MetricRegistry* registry = nullptr;  // required
};

/// Builds the structured stats document (schema/service/plan_cache/... —
/// every section the schema promises, see tools/check_stats_json).
obs::json::Value BuildStatsDocument(const StatsExportInputs& inputs);

/// kJson: the document pretty-printed; kText: its numeric leaves flattened
/// into `gkx_<path> value` lines (Prometheus-style).
std::string RenderStatsDocument(const obs::json::Value& root,
                                StatsFormat format);

}  // namespace gkx::service

#endif  // GKX_SERVICE_STATS_JSON_HPP_
