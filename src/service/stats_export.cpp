// The machine-readable face of the stats surface. One builder
// (BuildStatsDocument) produces the structured "gkx-stats-v1" JSON document
// from a StatsExportInputs bundle; the text format is its numeric leaves
// flattened into `gkx_<path> value` lines (obs::json::Value::FlattenNumbers),
// so the two views can never drift apart. QueryService::ExportStats feeds it
// one service's snapshot; ShardedQueryService::ExportStats feeds it the
// merged aggregate and embeds the per-shard documents (sharded_service.cpp).

#include <cstdio>
#include <string>
#include <utility>

#include "obs/json.hpp"
#include "service/query_service.hpp"
#include "service/stats_json.hpp"

namespace gkx::service {

namespace {

using obs::json::Value;

Value SummaryJson(const obs::HistogramSummary& s) {
  Value out = Value::Object();
  out["count"] = Value(s.count);
  out["p50"] = Value(s.p50);
  out["p90"] = Value(s.p90);
  out["p99"] = Value(s.p99);
  out["p999"] = Value(s.p999);
  out["max"] = Value(s.max);
  out["mean"] = Value(s.mean);
  return out;
}

}  // namespace

Value BuildStatsDocument(const StatsExportInputs& inputs) {
  const ServiceStats& stats = inputs.stats;

  Value root = Value::Object();
  root["schema"] = Value("gkx-stats-v1");

  {
    Value service = Value::Object();
    service["requests"] = Value(stats.requests);
    service["batches"] = Value(stats.batches);
    service["failures"] = Value(stats.failures);
    service["documents"] = Value(stats.documents);
    service["tracing"] = Value(stats.tracing);
    service["slow_queries"] = Value(stats.slow_queries);
    service["slow_query_threshold_ms"] = Value(inputs.slow_query_threshold_ms);
    root["service"] = std::move(service);
  }
  {
    Value pc = Value::Object();
    pc["entries"] = Value(stats.plan_cache_entries);
    pc["hits"] = Value(stats.plan_cache.hits);
    pc["canonical_hits"] = Value(stats.plan_cache.canonical_hits);
    pc["misses"] = Value(stats.plan_cache.misses);
    pc["parse_failures"] = Value(stats.plan_cache.parse_failures);
    pc["evictions"] = Value(stats.plan_cache.evictions);
    root["plan_cache"] = std::move(pc);
  }
  {
    Value ac = Value::Object();
    ac["enabled"] = Value(stats.answer_cache_enabled);
    ac["hits"] = Value(stats.answer_cache.hits);
    ac["misses"] = Value(stats.answer_cache.misses);
    ac["inserts"] = Value(stats.answer_cache.inserts);
    ac["invalidations"] = Value(stats.answer_cache.invalidations);
    ac["retained"] = Value(stats.answer_cache.retained);
    ac["remapped"] = Value(stats.answer_cache.remapped);
    ac["evictions"] = Value(stats.answer_cache.evictions);
    ac["declined"] = Value(stats.answer_cache.declined);
    ac["bytes"] = Value(stats.answer_cache.bytes);
    ac["entries"] = Value(stats.answer_cache.entries);
    root["answer_cache"] = std::move(ac);
  }
  {
    Value subs = Value::Object();
    subs["active"] = Value(stats.subscriptions.active);
    subs["fired"] = Value(stats.subscriptions.fired);
    subs["coalesced"] = Value(stats.subscriptions.coalesced);
    subs["skipped_disjoint"] = Value(stats.subscriptions.skipped_disjoint);
    subs["evaluations"] = Value(stats.subscriptions.evaluations);
    root["subscriptions"] = std::move(subs);
  }
  {
    Value counts = Value::Object();
    for (const auto& [name, count] : stats.evaluator_counts) {
      counts[name] = Value(count);
    }
    root["evaluator_counts"] = std::move(counts);
  }
  {
    Value counts = Value::Object();
    for (const auto& [name, count] : stats.segment_route_counts) {
      counts[name] = Value(count);
    }
    root["segment_route_counts"] = std::move(counts);
  }
  {
    // Staged-executor dispatch accounting. Invariant (checked by
    // tools/check_stats_json and the soak reconciliation):
    // parallel + sequential + skipped == staged_segments, exactly — the
    // per-segment buckets are flushed atomically per successful run, so
    // the identity holds even while segments execute concurrently (and
    // across shards: every term is a plain sum).
    Value exec = Value::Object();
    exec["staged_segments"] = Value(stats.staged_segments);
    exec["parallel_segments"] = Value(stats.exec_parallel_segments);
    exec["sequential_segments"] = Value(stats.exec_sequential_segments);
    exec["skipped_segments"] = Value(stats.exec_skipped_segments);
    root["exec"] = std::move(exec);
  }
  {
    Value latency = Value::Object();
    latency["count"] = Value(stats.latency.count);
    latency["p50"] = Value(stats.latency.p50_ms);
    latency["p90"] = Value(stats.latency.p90_ms);
    latency["p99"] = Value(stats.latency.p99_ms);
    latency["p999"] = Value(stats.latency.p999_ms);
    latency["max"] = Value(stats.latency.max_ms);
    latency["mean"] = Value(stats.latency.mean_ms);
    root["latency_ms"] = std::move(latency);
  }
  {
    // Per-route execution latency; counts reconcile against
    // segment_route_counts while tracing is active (the soak checks this).
    Value routes = Value::Object();
    for (const auto& [label, summary] : stats.route_latency) {
      routes[label] = SummaryJson(summary);
    }
    root["routes"] = std::move(routes);
  }
  {
    // The raw registry, with dotted names nested ("update.splice_ms" →
    // metrics.update.splice_ms). request_latency_ms and the route family
    // already have first-class sections above; the registry view is the
    // complete, uncurated surface.
    Value metrics = Value::Object();
    auto slot = [&metrics](const std::string& name) -> Value& {
      Value* node = &metrics;
      std::string_view rest = name;
      for (size_t dot = rest.find('.'); dot != std::string_view::npos;
           dot = rest.find('.')) {
        Value& child = (*node)[std::string(rest.substr(0, dot))];
        if (!child.is_object()) child = Value::Object();
        node = &child;
        rest.remove_prefix(dot + 1);
      }
      return (*node)[std::string(rest)];
    };
    for (const auto& [name, value] : inputs.registry->CounterValues()) {
      slot(name) = Value(value);
    }
    for (const auto& [name, value] : inputs.registry->GaugeValues()) {
      slot(name) = Value(value);
    }
    for (const auto& [name, summary] : inputs.registry->HistogramSummaries()) {
      slot(name) = SummaryJson(summary);
    }
    root["metrics"] = std::move(metrics);
  }
  {
    Value entries = Value::Array();
    for (const obs::SlowQuery& slow : inputs.slow_queries) {
      Value entry = Value::Object();
      entry["doc_key"] = Value(slow.doc_key);
      entry["query"] = Value(slow.query);
      entry["revision"] = Value(slow.revision);
      entry["total_ms"] = Value(slow.total_ms);
      Value routes = Value::Array();
      for (const std::string& route : slow.routes) routes.Append(Value(route));
      entry["routes"] = std::move(routes);
      Value stages = Value::Object();
      for (const auto& [stage, ms] : slow.stages_ms) stages[stage] = Value(ms);
      entry["stages_ms"] = std::move(stages);
      entries.Append(std::move(entry));
    }
    root["slow_queries"] = std::move(entries);
  }

  return root;
}

std::string RenderStatsDocument(const Value& root, StatsFormat format) {
  if (format == StatsFormat::kJson) return root.Dump(2) + "\n";

  // Text: every numeric leaf of the same document, one per line.
  std::vector<std::pair<std::string, double>> lines;
  root.FlattenNumbers("gkx", &lines);
  std::string out;
  out.reserve(lines.size() * 40);
  for (const auto& [name, value] : lines) {
    char buf[64];
    if (value == static_cast<double>(static_cast<int64_t>(value))) {
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(value));
    } else {
      std::snprintf(buf, sizeof(buf), "%.6f", value);
    }
    out += name;
    out.push_back(' ');
    out += buf;
    out.push_back('\n');
  }
  return out;
}

Value QueryService::ExportStatsDocument() const {
  StatsExportInputs inputs;
  inputs.stats = Stats();
  inputs.slow_query_threshold_ms = slow_log_.threshold_ms();
  inputs.slow_queries = slow_log_.Snapshot();
  inputs.registry = &registry_;
  return BuildStatsDocument(inputs);
}

std::string QueryService::ExportStats(StatsFormat format) const {
  return RenderStatsDocument(ExportStatsDocument(), format);
}

}  // namespace gkx::service
