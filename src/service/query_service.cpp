#include "service/query_service.hpp"

#include <algorithm>
#include <iterator>
#include <utility>

#include "plan/ir.hpp"
#include "service/indexed_path.hpp"

namespace gkx::service {

namespace {

inline double MillisBetween(uint64_t begin_ns, uint64_t end_ns) {
  return static_cast<double>(end_ns - begin_ns) * 1e-6;
}

inline double SecondsBetween(uint64_t begin_ns, uint64_t end_ns) {
  return static_cast<double>(end_ns - begin_ns) * 1e-9;
}

}  // namespace

QueryService::QueryService(const Options& options)
    : options_(options),
      pool_(options.pool ? options.pool : &ThreadPool::Shared()),
      plan_cache_(options.plan_cache),
      answer_cache_(options.answer_cache),
      latency_hist_(registry_.GetHistogram("request_latency_ms")),
      stage_doc_lookup_(registry_.GetHistogram("stage.doc_lookup_ms")),
      stage_plan_lookup_(registry_.GetHistogram("stage.plan_lookup_ms")),
      stage_answer_cache_lookup_(
          registry_.GetHistogram("stage.answer_cache_lookup_ms")),
      stage_execute_(registry_.GetHistogram("stage.execute_ms")),
      stage_cache_insert_(registry_.GetHistogram("stage.cache_insert_ms")),
      update_count_(registry_.GetCounter("update.count")),
      update_splice_(registry_.GetHistogram("update.splice_ms")),
      update_index_splice_(registry_.GetHistogram("update.index_splice_ms")),
      update_affected_scan_(
          registry_.GetHistogram("update.affected_scan_ms")),
      update_invalidated_(registry_.GetHistogram(
          "update.invalidated_entries", obs::Histogram::Unit::kCount)),
      update_retained_(registry_.GetHistogram(
          "update.retained_entries", obs::Histogram::Unit::kCount)),
      update_remapped_(registry_.GetHistogram(
          "update.remapped_entries", obs::Histogram::Unit::kCount)),
      update_sub_eval_(registry_.GetHistogram("update.subscription_eval_ms")),
      slow_log_(options.obs.slow_query_ms, options.obs.slow_query_capacity),
      tracing_(options.obs.tracing && !obs::kCompiledOut),
      subscriptions_(&store_, pool_) {
  // Intra-query parallelism shares the service pool unless the caller
  // provided a dedicated one.
  if (options_.exec.pool == nullptr) options_.exec.pool = pool_;
  store_.set_report_deltas(options.delta_invalidation);
  if (!options_.wal_dir.empty()) {
    // Open + recover BEFORE the update listener is installed: replay feeds
    // the store through the Recover* paths (no journaling, no listener), so
    // the mview layer starts cold against the recovered corpus instead of
    // re-processing history as churn. On failure the service still serves —
    // in memory, WAL-less — and wal_status() carries the reason.
    wal::WalOptions wal_options = options_.wal;
    wal_options.dir = options_.wal_dir;
    auto wal = wal::Wal::OpenAndRecover(wal_options, &store_, &wal_recovery_,
                                        &registry_);
    if (wal.ok()) {
      wal_ = std::move(wal).value();
      store_.AttachWal(wal_.get());
    } else {
      wal_status_ = wal.status();
    }
  }
  store_.SetUpdateListener(
      [this](const CorpusUpdate& update) { OnCorpusUpdate(update); });
  if (tracing_) {
    subscriptions_.set_evaluation_observer(
        [this](double seconds) { update_sub_eval_->Record(seconds); });
  }
}

Status QueryService::RegisterDocument(std::string key, xml::Document doc) {
  return store_.Put(std::move(key), std::move(doc));
}

Status QueryService::RegisterXml(std::string key, std::string_view xml) {
  return store_.PutXml(std::move(key), xml);
}

Status QueryService::UpdateDocument(std::string_view key,
                                    const xml::SubtreeEdit& edit) {
  return store_.Update(key, edit);
}

bool QueryService::RemoveDocument(std::string_view key) {
  return store_.Remove(key);
}

void QueryService::OnCorpusUpdate(const CorpusUpdate& update) {
  // The store pre-computes the changed-name set from cached per-document
  // name sets (whole-document replacement) or the subtree delta (Update) —
  // churn rescans no intern pool and builds no posting list. A plan whose
  // footprint is unaffected by the set (plus, for deltas, the sharpened
  // region-local tests in plan/footprint.hpp) cannot see the difference.
  if (tracing_) {
    update_count_->Add();
    update_splice_->Record(update.splice_seconds);
    update_index_splice_->Record(update.index_splice_seconds);
  }
  if (options_.answer_cache_enabled) {
    const uint64_t t0 = tracing_ ? obs::NowNs() : 0;
    const mview::AnswerCache::UpdateImpact impact =
        answer_cache_.OnDocumentUpdate(
            update.key, update.old_doc ? update.old_doc->revision() : -1,
            update.new_doc ? update.new_doc->revision() : -1,
            update.changed_names, update.delta);
    if (tracing_) {
      // The footprint AffectedBy scan dominates this call; the churn-impact
      // histograms record how many entries each update touched.
      update_affected_scan_->RecordValue(obs::NowNs() - t0);
      update_invalidated_->RecordValue(
          static_cast<uint64_t>(impact.invalidated));
      update_retained_->RecordValue(static_cast<uint64_t>(impact.retained));
      update_remapped_->RecordValue(static_cast<uint64_t>(impact.remapped));
    }
  }
  subscriptions_.NotifyDocumentChanged(update.key, update.changed_names,
                                       /*all_changed=*/!update.replacement(),
                                       /*removed=*/update.new_doc == nullptr,
                                       update.delta);
  // Auto-checkpoint: the listener runs post-install, post-durability, and
  // outside the store mutex — exactly the place the journal may be folded
  // into a snapshot set. Checkpoint errors are non-fatal by design (the
  // previous manifest stays valid, the journal just keeps growing, and the
  // next mutation retries); explicit CheckpointNow() callers see the Status.
  if (wal_ != nullptr && wal_->options().checkpoint_every_bytes > 0 &&
      wal_->BytesSinceCheckpoint() >= wal_->options().checkpoint_every_bytes) {
    (void)wal_->Checkpoint(store_);
  }
}

Status QueryService::CheckpointNow() {
  if (wal_ == nullptr) return Status::Ok();
  return wal_->Checkpoint(store_);
}

void QueryService::CrashWalForTest() {
  if (wal_ == nullptr) return;
  // Detach first: a mutation racing the crash must not block forever on a
  // committer that is gone. (WaitDurable also wakes on crashed_, but new
  // enqueues would CHECK-fail — the soak quiesces writers before killing.)
  store_.AttachWal(nullptr);
  wal_->SimulateCrash();
}

Result<QueryService::Answer> QueryService::Process(
    eval::Engine& engine, const std::string& doc_key,
    const std::string& query_text) {
  const uint64_t t_start = obs::NowNs();
  const int64_t seq = requests_.fetch_add(1, std::memory_order_relaxed);
  // Sub-microsecond lookup stages stamp the clock 1-in-kStageSampleEvery
  // requests: on a warm answer-cache hit the whole request is ~0.5us, and
  // per-request clock reads alone would cost tens of percent (the
  // bench_obs_overhead bar is < 5%). Execution-side stamps stay
  // per-request — they only run on answer-cache misses, where evaluation
  // work amortizes them — which is also what keeps the route histograms
  // exactly reconcilable against the segment counters.
  const bool sampled = tracing_ && (seq & (kStageSampleEvery - 1)) == 0;

  auto fail = [this](Status status) -> Result<Answer> {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return status;
  };

  std::shared_ptr<const StoredDocument> stored = store_.Get(doc_key);
  const uint64_t t_doc = sampled ? obs::NowNs() : 0;
  if (stored == nullptr) {
    return fail(InvalidArgumentError("unknown document key '" + doc_key + "'"));
  }

  auto plan_or = plan_cache_.GetOrCompile(query_text);
  const uint64_t t_plan = sampled ? obs::NowNs() : 0;
  if (!plan_or.ok()) return fail(plan_or.status());
  const std::shared_ptr<const eval::Engine::Plan>& plan = *plan_or;

  Answer answer;
  bool answered = false;
  bool from_answer_cache = false;
  if (options_.answer_cache_enabled) {
    // The revision pins the exact document state this request snapshotted;
    // a hit is byte-identical to evaluating `stored` fresh.
    if (auto cached = answer_cache_.Lookup(doc_key, stored->revision(),
                                           plan->canonical_text)) {
      answer = cached->answer;
      answered = true;
      from_answer_cache = true;
    }
  }
  const uint64_t t_cache = sampled ? obs::NowNs() : 0;

  // Per-segment timings for staged plans; empty for everything else. The
  // trace has exactly one entry per plan segment (skipped segments report
  // 0.0s), which is what keeps route-histogram counts reconcilable against
  // segment_route_counts.
  plan::ExecTrace exec_trace;
  bool indexed = false;
  const uint64_t t_exec_begin =
      tracing_ && !answered ? obs::NowNs() : 0;
  if (!answered && options_.indexed_fast_path && plan->fragment.in_pf) {
    if (auto nodes = TryIndexedPath(stored->index(), plan->query)) {
      answer.value = eval::Value::Nodes(std::move(*nodes));
      answer.fragment = plan->fragment;
      answer.evaluator = "pf-indexed";
      answered = true;
      indexed = true;
    }
  }
  const bool evaluated = !from_answer_cache;
  if (!answered) {
    auto run = engine.RunPlan(stored->doc(), *plan,
                              eval::RootContext(stored->doc()),
                              tracing_ && plan->staged ? &exec_trace : nullptr);
    if (!run.ok()) return fail(run.status());
    answer = std::move(run).value();
  }
  const uint64_t t_exec = tracing_ && evaluated ? obs::NowNs() : 0;

  if (options_.answer_cache_enabled && !from_answer_cache) {
    // Cache the true answer before the (test-only) tap can perturb it.
    answer_cache_.Insert(doc_key, stored->revision(), plan->canonical_text,
                         answer, plan->footprint);
  }
  const uint64_t t_insert = tracing_ && evaluated ? obs::NowNs() : 0;
  if (options_.answer_tap) options_.answer_tap(&answer);

  evaluator_counters_.Increment(answer.evaluator);
  if (from_answer_cache) {
    // Nothing executed; segment counters track evaluated plans only.
  } else if (plan->staged) {
    int64_t segments = 0;
    for (const auto& branch : plan->branches) {
      for (const auto& segment : branch.segments) {
        segment_route_counters_.Increment(plan::RouteName(segment.route));
        ++segments;
      }
    }
    staged_segments_.fetch_add(segments, std::memory_order_relaxed);
  } else {
    // Uniform plan (or the index fast path): one whole-query segment.
    segment_route_counters_.Increment(answer.evaluator);
  }

  const uint64_t t_end = obs::NowNs();
  if (tracing_) {
    if (sampled) {
      stage_doc_lookup_->RecordValue(t_doc - t_start);
      stage_plan_lookup_->RecordValue(t_plan - t_doc);
      stage_answer_cache_lookup_->RecordValue(t_cache - t_plan);
    }
    if (evaluated) {
      stage_execute_->RecordValue(t_exec - t_exec_begin);
      stage_cache_insert_->RecordValue(t_insert - t_exec);
    }
    // Route histograms mirror the segment counters one-for-one: staged
    // plans record each segment under its route, everything else records
    // its single whole-query dispatch — except answer-cache hits, which
    // executed nothing and increment no segment counter either.
    if (from_answer_cache) {
      // No route ran.
    } else if (plan->staged) {
      for (const plan::SegmentTiming& timing : exec_trace) {
        route_hists_.Get(plan::RouteName(timing.route))
            ->Record(timing.seconds);
      }
    } else {
      route_hists_.Get(answer.evaluator)
          ->Record(SecondsBetween(t_exec_begin, t_exec));
    }
    const double total_ms = MillisBetween(t_start, t_end);
    if (slow_log_.Eligible(total_ms)) {
      obs::SlowQuery slow;
      slow.doc_key = doc_key;
      slow.query = plan->canonical_text;
      slow.revision = static_cast<uint64_t>(stored->revision());
      slow.total_ms = total_ms;
      if (from_answer_cache) {
        slow.routes.push_back("answer-cache");
      } else if (plan->staged) {
        for (const plan::SegmentTiming& timing : exec_trace) {
          slow.routes.emplace_back(plan::RouteName(timing.route));
        }
      } else {
        slow.routes.push_back(indexed ? "pf-indexed" : answer.evaluator);
      }
      // The breakdown carries every span this request actually stamped:
      // the lookup stages when it was a sampled request, the execution
      // spans whenever it evaluated.
      if (sampled) {
        slow.stages_ms.emplace_back("doc_lookup",
                                    MillisBetween(t_start, t_doc));
        slow.stages_ms.emplace_back("plan_lookup",
                                    MillisBetween(t_doc, t_plan));
        slow.stages_ms.emplace_back("answer_cache_lookup",
                                    MillisBetween(t_plan, t_cache));
      }
      if (evaluated) {
        slow.stages_ms.emplace_back("execute",
                                    MillisBetween(t_exec_begin, t_exec));
        slow.stages_ms.emplace_back("cache_insert",
                                    MillisBetween(t_exec, t_insert));
      }
      slow_log_.Record(std::move(slow));
    }
  }
  // Always on (even with GKX_OBS_DISABLED): this histogram IS the request
  // latency statistic — count == requests - failures in every build.
  latency_hist_->RecordValue(t_end - t_start);
  return answer;
}

Result<QueryService::Answer> QueryService::Submit(
    const std::string& doc_key, const std::string& query_text) {
  eval::Engine engine;
  engine.set_exec_options(options_.exec);
  engine.set_exec_stats(&exec_stats_);
  return Process(engine, doc_key, query_text);
}

std::vector<Result<QueryService::Answer>> QueryService::SubmitBatch(
    const std::vector<Request>& requests) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  const int n = static_cast<int>(requests.size());
  std::vector<Result<Answer>> responses(
      requests.size(), Result<Answer>(InternalError("request not processed")));
  if (n == 0) return responses;

  int workers =
      options_.batch_workers > 0 ? options_.batch_workers : pool_->thread_count();
  if (workers > n) workers = n;
  if (workers < 1) workers = 1;

  // Workers claim requests through a shared cursor (costs are skewed: a
  // cache-hit PF lookup and a cold CVT evaluation differ by orders of
  // magnitude). Each worker gets a private Engine — evaluator scratch state
  // is not thread-safe; documents and plans are shared read-only.
  std::atomic<int> cursor{0};
  auto worker = [&](int) {
    eval::Engine engine;
    engine.set_exec_options(options_.exec);
    engine.set_exec_stats(&exec_stats_);
    while (true) {
      const int i = cursor.fetch_add(1);
      if (i >= n) return;
      responses[static_cast<size_t>(i)] =
          Process(engine, requests[static_cast<size_t>(i)].doc_key,
                  requests[static_cast<size_t>(i)].query);
    }
  };

  if (workers == 1) {
    worker(0);
  } else {
    pool_->ParallelFor(workers, worker);
  }
  return responses;
}

Result<int64_t> QueryService::Subscribe(std::string doc_selector,
                                        const std::string& query_text,
                                        mview::SubscriptionCallback callback) {
  // Standing queries compile outside the PlanCache: they are long-lived
  // (the subscription pins its plan anyway) and must not skew the
  // lookups-per-request reconciliation the soak harness checks.
  auto plan = eval::Engine::Compile(query_text);
  if (!plan.ok()) return plan.status();
  return subscriptions_.Subscribe(
      std::move(doc_selector),
      std::make_shared<const eval::Engine::Plan>(std::move(plan).value()),
      std::move(callback));
}

bool QueryService::Unsubscribe(int64_t subscription_id) {
  return subscriptions_.Unsubscribe(subscription_id);
}

void QueryService::FlushSubscriptions() { subscriptions_.Flush(); }

ServiceStats QueryService::Stats() const {
  ServiceStats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.failures = failures_.load(std::memory_order_relaxed);
  out.documents = store_.size();
  out.plan_cache_entries = plan_cache_.size();
  out.plan_cache = plan_cache_.counters();
  out.answer_cache_enabled = options_.answer_cache_enabled;
  if (options_.answer_cache_enabled) {
    out.answer_cache = answer_cache_.counters();
  }
  out.subscriptions = subscriptions_.counters();
  out.evaluator_counts = evaluator_counters_.Snapshot();
  out.segment_route_counts = segment_route_counters_.Snapshot();
  out.route_latency = route_hists_.Summaries();
  out.tracing = tracing_;
  out.staged_segments = staged_segments_.load(std::memory_order_relaxed);
  out.exec_parallel_segments =
      exec_stats_.parallel_segments.load(std::memory_order_relaxed);
  out.exec_sequential_segments =
      exec_stats_.sequential_segments.load(std::memory_order_relaxed);
  out.exec_skipped_segments =
      exec_stats_.skipped_segments.load(std::memory_order_relaxed);
  out.slow_queries = slow_log_.recorded();
  out.latency = ToLatencySummary(latency_hist_->Summary());
  return out;
}

void QueryService::MergeObservabilityInto(obs::Histogram* latency,
                                          obs::HistogramFamily* routes,
                                          obs::MetricRegistry* registry) const {
  if (latency != nullptr) latency->Merge(*latency_hist_);
  if (routes != nullptr) route_hists_.MergeInto(routes);
  if (registry != nullptr) registry_.MergeInto(registry);
}

}  // namespace gkx::service
