#include "service/query_service.hpp"

#include <algorithm>
#include <iterator>
#include <utility>

#include "base/stopwatch.hpp"
#include "plan/ir.hpp"
#include "service/indexed_path.hpp"

namespace gkx::service {

QueryService::QueryService(const Options& options)
    : options_(options),
      pool_(options.pool ? options.pool : &ThreadPool::Shared()),
      plan_cache_(options.plan_cache),
      answer_cache_(options.answer_cache),
      subscriptions_(&store_, pool_),
      latency_(options.latency_window) {
  store_.set_report_deltas(options.delta_invalidation);
  store_.SetUpdateListener(
      [this](const CorpusUpdate& update) { OnCorpusUpdate(update); });
}

Status QueryService::RegisterDocument(std::string key, xml::Document doc) {
  return store_.Put(std::move(key), std::move(doc));
}

Status QueryService::RegisterXml(std::string key, std::string_view xml) {
  return store_.PutXml(std::move(key), xml);
}

Status QueryService::UpdateDocument(std::string_view key,
                                    const xml::SubtreeEdit& edit) {
  return store_.Update(key, edit);
}

bool QueryService::RemoveDocument(std::string_view key) {
  return store_.Remove(key);
}

void QueryService::OnCorpusUpdate(const CorpusUpdate& update) {
  // The store pre-computes the changed-name set from cached per-document
  // name sets (whole-document replacement) or the subtree delta (Update) —
  // churn rescans no intern pool and builds no posting list. A plan whose
  // footprint is unaffected by the set (plus, for deltas, the sharpened
  // region-local tests in plan/footprint.hpp) cannot see the difference.
  if (options_.answer_cache_enabled) {
    answer_cache_.OnDocumentUpdate(
        update.key, update.old_doc ? update.old_doc->revision() : -1,
        update.new_doc ? update.new_doc->revision() : -1, update.changed_names,
        update.delta);
  }
  subscriptions_.NotifyDocumentChanged(update.key, update.changed_names,
                                       /*all_changed=*/!update.replacement(),
                                       /*removed=*/update.new_doc == nullptr,
                                       update.delta);
}

Result<QueryService::Answer> QueryService::Process(
    eval::Engine& engine, const std::string& doc_key,
    const std::string& query_text) {
  Stopwatch sw;
  requests_.fetch_add(1, std::memory_order_relaxed);

  auto fail = [this](Status status) -> Result<Answer> {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return status;
  };

  std::shared_ptr<const StoredDocument> stored = store_.Get(doc_key);
  if (stored == nullptr) {
    return fail(InvalidArgumentError("unknown document key '" + doc_key + "'"));
  }

  auto plan_or = plan_cache_.GetOrCompile(query_text);
  if (!plan_or.ok()) return fail(plan_or.status());
  const std::shared_ptr<const eval::Engine::Plan>& plan = *plan_or;

  Answer answer;
  bool answered = false;
  bool from_answer_cache = false;
  if (options_.answer_cache_enabled) {
    // The revision pins the exact document state this request snapshotted;
    // a hit is byte-identical to evaluating `stored` fresh.
    if (auto cached = answer_cache_.Lookup(doc_key, stored->revision(),
                                           plan->canonical_text)) {
      answer = cached->answer;
      answered = true;
      from_answer_cache = true;
    }
  }
  if (!answered && options_.indexed_fast_path && plan->fragment.in_pf) {
    if (auto nodes = TryIndexedPath(stored->index(), plan->query)) {
      answer.value = eval::Value::Nodes(std::move(*nodes));
      answer.fragment = plan->fragment;
      answer.evaluator = "pf-indexed";
      answered = true;
    }
  }
  if (!answered) {
    auto run = engine.RunPlan(stored->doc(), *plan);
    if (!run.ok()) return fail(run.status());
    answer = std::move(run).value();
  }
  if (options_.answer_cache_enabled && !from_answer_cache) {
    // Cache the true answer before the (test-only) tap can perturb it.
    answer_cache_.Insert(doc_key, stored->revision(), plan->canonical_text,
                         answer, plan->footprint);
  }
  if (options_.answer_tap) options_.answer_tap(&answer);

  evaluator_counters_.Increment(answer.evaluator);
  if (from_answer_cache) {
    // Nothing executed; segment counters track evaluated plans only.
  } else if (plan->staged) {
    for (const auto& branch : plan->branches) {
      for (const auto& segment : branch.segments) {
        segment_route_counters_.Increment(plan::RouteName(segment.route));
      }
    }
  } else {
    // Uniform plan (or the index fast path): one whole-query segment.
    segment_route_counters_.Increment(answer.evaluator);
  }
  latency_.Record(sw.ElapsedMillis());
  return answer;
}

Result<QueryService::Answer> QueryService::Submit(
    const std::string& doc_key, const std::string& query_text) {
  eval::Engine engine;
  return Process(engine, doc_key, query_text);
}

std::vector<Result<QueryService::Answer>> QueryService::SubmitBatch(
    const std::vector<Request>& requests) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  const int n = static_cast<int>(requests.size());
  std::vector<Result<Answer>> responses(
      requests.size(), Result<Answer>(InternalError("request not processed")));
  if (n == 0) return responses;

  int workers =
      options_.batch_workers > 0 ? options_.batch_workers : pool_->thread_count();
  if (workers > n) workers = n;
  if (workers < 1) workers = 1;

  // Workers claim requests through a shared cursor (costs are skewed: a
  // cache-hit PF lookup and a cold CVT evaluation differ by orders of
  // magnitude). Each worker gets a private Engine — evaluator scratch state
  // is not thread-safe; documents and plans are shared read-only.
  std::atomic<int> cursor{0};
  auto worker = [&](int) {
    eval::Engine engine;
    while (true) {
      const int i = cursor.fetch_add(1);
      if (i >= n) return;
      responses[static_cast<size_t>(i)] =
          Process(engine, requests[static_cast<size_t>(i)].doc_key,
                  requests[static_cast<size_t>(i)].query);
    }
  };

  if (workers == 1) {
    worker(0);
  } else {
    pool_->ParallelFor(workers, worker);
  }
  return responses;
}

Result<int64_t> QueryService::Subscribe(std::string doc_selector,
                                        const std::string& query_text,
                                        mview::SubscriptionCallback callback) {
  // Standing queries compile outside the PlanCache: they are long-lived
  // (the subscription pins its plan anyway) and must not skew the
  // lookups-per-request reconciliation the soak harness checks.
  auto plan = eval::Engine::Compile(query_text);
  if (!plan.ok()) return plan.status();
  return subscriptions_.Subscribe(
      std::move(doc_selector),
      std::make_shared<const eval::Engine::Plan>(std::move(plan).value()),
      std::move(callback));
}

bool QueryService::Unsubscribe(int64_t subscription_id) {
  return subscriptions_.Unsubscribe(subscription_id);
}

void QueryService::FlushSubscriptions() { subscriptions_.Flush(); }

ServiceStats QueryService::Stats() const {
  ServiceStats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.failures = failures_.load(std::memory_order_relaxed);
  out.documents = store_.size();
  out.plan_cache_entries = plan_cache_.size();
  out.plan_cache = plan_cache_.counters();
  out.answer_cache_enabled = options_.answer_cache_enabled;
  if (options_.answer_cache_enabled) {
    out.answer_cache = answer_cache_.counters();
  }
  out.subscriptions = subscriptions_.counters();
  out.evaluator_counts = evaluator_counters_.Snapshot();
  out.segment_route_counts = segment_route_counters_.Snapshot();
  out.latency = latency_.Summary();
  return out;
}

}  // namespace gkx::service
