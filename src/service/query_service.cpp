#include "service/query_service.hpp"

#include <utility>

#include "base/stopwatch.hpp"
#include "plan/ir.hpp"
#include "service/indexed_path.hpp"

namespace gkx::service {

QueryService::QueryService(const Options& options)
    : options_(options),
      pool_(options.pool ? options.pool : &ThreadPool::Shared()),
      plan_cache_(options.plan_cache),
      latency_(options.latency_window) {}

Status QueryService::RegisterDocument(std::string key, xml::Document doc) {
  return store_.Put(std::move(key), std::move(doc));
}

Status QueryService::RegisterXml(std::string key, std::string_view xml) {
  return store_.PutXml(std::move(key), xml);
}

bool QueryService::RemoveDocument(std::string_view key) {
  return store_.Remove(key);
}

Result<QueryService::Answer> QueryService::Process(
    eval::Engine& engine, const std::string& doc_key,
    const std::string& query_text) {
  Stopwatch sw;
  requests_.fetch_add(1, std::memory_order_relaxed);

  auto fail = [this](Status status) -> Result<Answer> {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return status;
  };

  std::shared_ptr<const StoredDocument> stored = store_.Get(doc_key);
  if (stored == nullptr) {
    return fail(InvalidArgumentError("unknown document key '" + doc_key + "'"));
  }

  auto plan_or = plan_cache_.GetOrCompile(query_text);
  if (!plan_or.ok()) return fail(plan_or.status());
  const std::shared_ptr<const eval::Engine::Plan>& plan = *plan_or;

  Answer answer;
  bool answered = false;
  if (options_.indexed_fast_path && plan->fragment.in_pf) {
    if (auto nodes = TryIndexedPath(stored->index(), plan->query)) {
      answer.value = eval::Value::Nodes(std::move(*nodes));
      answer.fragment = plan->fragment;
      answer.evaluator = "pf-indexed";
      answered = true;
    }
  }
  if (!answered) {
    auto run = engine.RunPlan(stored->doc(), *plan);
    if (!run.ok()) return fail(run.status());
    answer = std::move(run).value();
  }
  if (options_.answer_tap) options_.answer_tap(&answer);

  evaluator_counters_.Increment(answer.evaluator);
  if (plan->staged) {
    for (const auto& branch : plan->branches) {
      for (const auto& segment : branch.segments) {
        segment_route_counters_.Increment(plan::RouteName(segment.route));
      }
    }
  } else {
    // Uniform plan (or the index fast path): one whole-query segment.
    segment_route_counters_.Increment(answer.evaluator);
  }
  latency_.Record(sw.ElapsedMillis());
  return answer;
}

Result<QueryService::Answer> QueryService::Submit(
    const std::string& doc_key, const std::string& query_text) {
  eval::Engine engine;
  return Process(engine, doc_key, query_text);
}

std::vector<Result<QueryService::Answer>> QueryService::SubmitBatch(
    const std::vector<Request>& requests) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  const int n = static_cast<int>(requests.size());
  std::vector<Result<Answer>> responses(
      requests.size(), Result<Answer>(InternalError("request not processed")));
  if (n == 0) return responses;

  int workers =
      options_.batch_workers > 0 ? options_.batch_workers : pool_->thread_count();
  if (workers > n) workers = n;
  if (workers < 1) workers = 1;

  // Workers claim requests through a shared cursor (costs are skewed: a
  // cache-hit PF lookup and a cold CVT evaluation differ by orders of
  // magnitude). Each worker gets a private Engine — evaluator scratch state
  // is not thread-safe; documents and plans are shared read-only.
  std::atomic<int> cursor{0};
  auto worker = [&](int) {
    eval::Engine engine;
    while (true) {
      const int i = cursor.fetch_add(1);
      if (i >= n) return;
      responses[static_cast<size_t>(i)] =
          Process(engine, requests[static_cast<size_t>(i)].doc_key,
                  requests[static_cast<size_t>(i)].query);
    }
  };

  if (workers == 1) {
    worker(0);
  } else {
    pool_->ParallelFor(workers, worker);
  }
  return responses;
}

ServiceStats QueryService::Stats() const {
  ServiceStats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.failures = failures_.load(std::memory_order_relaxed);
  out.documents = store_.size();
  out.plan_cache_entries = plan_cache_.size();
  out.plan_cache = plan_cache_.counters();
  out.evaluator_counts = evaluator_counters_.Snapshot();
  out.segment_route_counts = segment_route_counters_.Snapshot();
  out.latency = latency_.Summary();
  return out;
}

}  // namespace gkx::service
