#include "service/indexed_path.hpp"

#include <algorithm>

#include "eval/axes.hpp"

namespace gkx::service {

namespace {

using eval::NodeSet;
using eval::SortUnique;
using xml::NodeId;
using xpath::Axis;
using xpath::NodeTest;

bool IsWildcard(const NodeTest& test) {
  // Element-only data model: '*' and node() match every node.
  return test.kind == NodeTest::Kind::kAny || test.kind == NodeTest::Kind::kNode;
}

/// One normalized step of the supported subset.
struct FlatStep {
  Axis axis = Axis::kChild;
  bool wildcard = true;
  xml::NameId name = xml::kNoName;  // when !wildcard
};

/// Flattens a path into supported steps, fusing the '//' idiom. Returns
/// false if any step falls outside the subset.
bool FlattenSteps(const xml::Document& doc, const xpath::PathExpr& path,
                  std::vector<FlatStep>* out) {
  for (size_t s = 0; s < path.step_count(); ++s) {
    const xpath::Step& step = path.step(s);
    if (!step.predicates.empty()) return false;
    FlatStep flat;
    flat.axis = step.axis;
    flat.wildcard = IsWildcard(step.test);
    if (!flat.wildcard) {
      flat.name = doc.FindName(step.test.name);  // kNoName -> empty result
    }
    switch (step.axis) {
      case Axis::kSelf:
      case Axis::kChild:
      case Axis::kDescendant:
        break;
      case Axis::kDescendantOrSelf:
        // Fuse descendant-or-self::node()/child::t -> descendant::t and
        // descendant-or-self::node()/descendant::t -> descendant::t.
        if (flat.wildcard && s + 1 < path.step_count()) {
          const xpath::Step& next = path.step(s + 1);
          if (next.predicates.empty() &&
              (next.axis == Axis::kChild || next.axis == Axis::kDescendant)) {
            flat.axis = Axis::kDescendant;
            flat.wildcard = IsWildcard(next.test);
            if (!flat.wildcard) flat.name = doc.FindName(next.test.name);
            ++s;
          }
        }
        break;
      default:
        return false;  // reverse/sibling/parent/following axes: fall back
    }
    out->push_back(flat);
  }
  return true;
}

/// Applies one flattened step to a sorted frontier.
NodeSet ApplyFlatStep(const xml::DocumentIndex& index, const FlatStep& step,
                      const NodeSet& frontier) {
  const xml::Document& doc = index.doc();
  NodeSet next;
  switch (step.axis) {
    case Axis::kSelf:
      if (step.wildcard) return frontier;
      for (NodeId v : frontier) {
        if (doc.NodeHasName(v, step.name)) next.push_back(v);
      }
      return next;  // subset of a sorted set stays sorted
    case Axis::kChild:
      for (NodeId f : frontier) {
        for (NodeId c = doc.first_child(f); c != xml::kNullNode;
             c = doc.next_sibling(c)) {
          if (step.wildcard || doc.NodeHasName(c, step.name)) {
            next.push_back(c);
          }
        }
      }
      break;
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf: {
      const NodeId self_offset = step.axis == Axis::kDescendant ? 1 : 0;
      for (NodeId f : frontier) {
        const NodeId first = f + self_offset;
        const NodeId limit = f + doc.subtree_size(f);
        if (step.wildcard) {
          for (NodeId v = first; v < limit; ++v) next.push_back(v);
        } else {
          index.AppendNamedInRange(step.name, first, limit, &next);
        }
      }
      break;
    }
    default:
      GKX_CHECK(false);  // FlattenSteps admits no other axis
  }
  // Frontier nodes can be nested (after descendant steps), so per-origin
  // results may interleave and repeat.
  SortUnique(&next);
  return next;
}

std::optional<NodeSet> EvalPath(const xml::DocumentIndex& index,
                                const xpath::PathExpr& path, NodeId origin) {
  std::vector<FlatStep> steps;
  if (!FlattenSteps(index.doc(), path, &steps)) return std::nullopt;
  NodeSet frontier{path.absolute() ? index.doc().root() : origin};
  for (const FlatStep& step : steps) {
    if (frontier.empty()) break;
    frontier = ApplyFlatStep(index, step, frontier);
  }
  return frontier;
}

}  // namespace

std::optional<NodeSet> TryIndexedPath(const xml::DocumentIndex& index,
                                      const xpath::Query& query,
                                      NodeId origin) {
  if (index.doc().empty()) return std::nullopt;
  const xpath::Expr& root = query.root();
  switch (root.kind()) {
    case xpath::Expr::Kind::kPath:
      return EvalPath(index, root.As<xpath::PathExpr>(), origin);
    case xpath::Expr::Kind::kUnion: {
      const auto& u = root.As<xpath::UnionExpr>();
      NodeSet merged;
      for (size_t i = 0; i < u.branch_count(); ++i) {
        if (u.branch(i).kind() != xpath::Expr::Kind::kPath) return std::nullopt;
        auto branch =
            EvalPath(index, u.branch(i).As<xpath::PathExpr>(), origin);
        if (!branch) return std::nullopt;
        merged.insert(merged.end(), branch->begin(), branch->end());
      }
      SortUnique(&merged);
      return merged;
    }
    default:
      return std::nullopt;
  }
}

}  // namespace gkx::service
