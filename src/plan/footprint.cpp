#include "plan/footprint.hpp"

#include <algorithm>

namespace gkx::plan {

namespace {

// `context_named` tells the walk whether the expression's evaluation context
// node — if it is ever reached — already passed a node test recorded in
// `out`. Predicates run with it true: their context is the step's own nodes,
// so when no footprint name occurs in a document the step (and with it the
// predicate) is dead and the predicate's dependencies cannot matter. At the
// top level of a query it is false: there the context is the root node,
// whose string value is the document's entire text content, which no name
// set covers.
void WalkExpr(const xpath::Expr& expr, bool context_named, Footprint* out);

// Returns whether the step's output nodes are name-covered: either the
// context already was, or this step's own kName test pins them (if the name
// occurs in neither revision the step is dead and nothing downstream runs;
// if it occurs in either, it is in the changed-name set and the entry is
// invalidated regardless). Only an uncovered */node() test — one no kName
// step guards, like a top-level "/child::*" — forces any_name; a covered
// one ("//a[child::node()]", the abbreviated "." = self::node()) adds no
// observable dependence beyond the covering name.
bool WalkStep(const xpath::Step& step, bool context_named, Footprint* out) {
  bool covered = context_named;
  switch (step.test.kind) {
    case xpath::NodeTest::Kind::kName:
      out->names.push_back(step.test.name);
      covered = true;
      break;
    case xpath::NodeTest::Kind::kAny:
    case xpath::NodeTest::Kind::kNode:
      if (!covered) out->any_name = true;
      break;
  }
  for (const xpath::ExprPtr& predicate : step.predicates) {
    // The predicate's context is this step's own nodes: covered by the
    // step's name, or moot because any_name was just set.
    WalkExpr(*predicate, /*context_named=*/true, out);
  }
  return covered;
}

// Zero-argument forms of these functions read the context node's string
// value or name (eval::RecursiveEvaluatorBase::EvalFunction); position()
// and last() read only the context position/size, which name-disjoint
// updates cannot disturb (a dead step contributes no positions at all).
bool ReadsContextNode(const xpath::FunctionCall& call) {
  if (call.arg_count() != 0) return false;
  switch (call.function()) {
    case xpath::Function::kString:
    case xpath::Function::kNumber:
    case xpath::Function::kStringLength:
    case xpath::Function::kNormalizeSpace:
    case xpath::Function::kName:
    case xpath::Function::kLocalName:
      return true;
    default:
      return false;
  }
}

void WalkExpr(const xpath::Expr& expr, bool context_named, Footprint* out) {
  switch (expr.kind()) {
    case xpath::Expr::Kind::kNumberLiteral:
    case xpath::Expr::Kind::kStringLiteral:
      return;
    case xpath::Expr::Kind::kBinary: {
      const auto& binary = expr.As<xpath::BinaryExpr>();
      WalkExpr(binary.lhs(), context_named, out);
      WalkExpr(binary.rhs(), context_named, out);
      return;
    }
    case xpath::Expr::Kind::kNegate:
      WalkExpr(expr.As<xpath::NegateExpr>().operand(), context_named, out);
      return;
    case xpath::Expr::Kind::kFunctionCall: {
      const auto& call = expr.As<xpath::FunctionCall>();
      if (!context_named && ReadsContextNode(call)) out->any_name = true;
      for (size_t i = 0; i < call.arg_count(); ++i) {
        WalkExpr(call.arg(i), context_named, out);
      }
      return;
    }
    case xpath::Expr::Kind::kPath: {
      const auto& path = expr.As<xpath::PathExpr>();
      // A bare "/" (zero steps) denotes the root node itself. Coerced to a
      // string or number — string(/), sum(/), '/ = "x"' — its value is the
      // document's full text content, which depends on no name at all; in a
      // name-covered context the coercion is unreachable when the footprint
      // is dead, so only the uncovered case must force any_name.
      if (path.step_count() == 0 && !context_named) out->any_name = true;
      // Coverage flows forward through the step chain: the path is a
      // composition, so a dead name-tested step empties everything after
      // it. Coverage is about *reachability*, so it survives an absolute
      // path's rebinding to the root — inside a covered predicate even
      // "/child::node()" never runs once the guarding step is dead.
      bool covered = context_named;
      for (size_t s = 0; s < path.step_count(); ++s) {
        covered = WalkStep(path.step(s), covered, out);
      }
      return;
    }
    case xpath::Expr::Kind::kUnion: {
      const auto& u = expr.As<xpath::UnionExpr>();
      for (size_t b = 0; b < u.branch_count(); ++b) {
        WalkExpr(u.branch(b), context_named, out);
      }
      return;
    }
  }
}

}  // namespace

bool Footprint::Intersects(const std::vector<std::string>& changed) const {
  if (any_name) return true;
  // Both sides are sorted and duplicate-free; one linear merge pass.
  auto mine = names.begin();
  auto theirs = changed.begin();
  while (mine != names.end() && theirs != changed.end()) {
    if (*mine == *theirs) return true;
    if (*mine < *theirs) {
      ++mine;
    } else {
      ++theirs;
    }
  }
  return false;
}

std::string Footprint::ToString() const {
  if (any_name) return "any";
  std::string out = "{";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ',';
    out += names[i];
  }
  out += '}';
  return out;
}

Footprint ExtractFootprint(const xpath::Query& query) {
  Footprint out;
  WalkExpr(query.root(), /*context_named=*/false, &out);
  std::sort(out.names.begin(), out.names.end());
  out.names.erase(std::unique(out.names.begin(), out.names.end()),
                  out.names.end());
  return out;
}

}  // namespace gkx::plan
