#include "plan/footprint.hpp"

#include <algorithm>

namespace gkx::plan {

namespace {

// `context_named` tells the walk whether the expression's evaluation context
// node — if it is ever reached — already passed a node test recorded in
// `out`. Predicates run with it true: their context is the step's own nodes,
// so when no footprint name occurs in a document the step (and with it the
// predicate) is dead and the predicate's dependencies cannot matter. At the
// top level of a query it is false: there the context is the root node,
// whose string value is the document's entire text content, which no name
// set covers.
void WalkExpr(const xpath::Expr& expr, bool context_named, Footprint* out);

// Returns whether the step's output nodes are name-covered: either the
// context already was, or this step's own kName test pins them (if the name
// occurs in neither revision the step is dead and nothing downstream runs;
// if it occurs in either, it is in the changed-name set and the entry is
// invalidated regardless). Only an uncovered */node() test — one no kName
// step guards, like a top-level "/child::*" — forces any_name; a covered
// one ("//a[child::node()]", the abbreviated "." = self::node()) adds no
// observable dependence beyond the covering name. A */node() test also
// records the `wildcard` class, because coverage does not localize *which*
// nodes the wildcard selects (delta argument, header) — EXCEPT on the
// self/parent/ancestor axes: the ancestor-or-self chain of a node outside
// the edited region lies entirely outside it (the region is a whole
// subtree — an ancestor inside would pull the node in with it), so an
// upward wildcard can never select region nodes and "[. = 'x']" predicates
// keep their delta precision.
bool AxisEscapesAncestorChain(xpath::Axis axis) {
  switch (axis) {
    case xpath::Axis::kSelf:
    case xpath::Axis::kParent:
    case xpath::Axis::kAncestor:
    case xpath::Axis::kAncestorOrSelf:
      return false;
    default:
      return true;
  }
}

bool WalkStep(const xpath::Step& step, bool context_named, Footprint* out) {
  bool covered = context_named;
  switch (step.test.kind) {
    case xpath::NodeTest::Kind::kName:
      out->names.push_back(step.test.name);
      covered = true;
      break;
    case xpath::NodeTest::Kind::kAny:
    case xpath::NodeTest::Kind::kNode:
      if (AxisEscapesAncestorChain(step.axis)) out->wildcard = true;
      if (!covered) out->any_name = true;
      break;
  }
  for (const xpath::ExprPtr& predicate : step.predicates) {
    // The predicate's context is this step's own nodes: covered by the
    // step's name, or moot because any_name was just set.
    WalkExpr(*predicate, /*context_named=*/true, out);
  }
  return covered;
}

// Zero-argument forms of these functions read the context node's string
// value (string()/number()/string-length()/normalize-space()) or its name
// (name()/local-name()); position() and last() read only the context
// position/size, which name-disjoint updates cannot disturb (a dead step
// contributes no positions at all, and delta-surviving selections keep
// their order — header argument).
bool ReadsContextContent(const xpath::FunctionCall& call) {
  if (call.arg_count() != 0) return false;
  switch (call.function()) {
    case xpath::Function::kString:
    case xpath::Function::kNumber:
    case xpath::Function::kStringLength:
    case xpath::Function::kNormalizeSpace:
      return true;
    default:
      return false;
  }
}

bool ReadsContextName(const xpath::FunctionCall& call) {
  if (call.arg_count() != 0) return false;
  switch (call.function()) {
    case xpath::Function::kName:
    case xpath::Function::kLocalName:
      return true;
    default:
      return false;
  }
}

// True when the function coerces a node-set argument to a string or number
// — i.e. reads string values. count()/boolean()/not() consume node-sets
// natively (cardinality / emptiness), and name()/local-name() read tags,
// not content (tracked separately as name_read).
bool CoercesNodeSetArgsToContent(xpath::Function function) {
  switch (function) {
    case xpath::Function::kString:
    case xpath::Function::kNumber:
    case xpath::Function::kSum:
    case xpath::Function::kConcat:
    case xpath::Function::kContains:
    case xpath::Function::kStartsWith:
    case xpath::Function::kStringLength:
    case xpath::Function::kNormalizeSpace:
    case xpath::Function::kSubstring:
    case xpath::Function::kSubstringBefore:
    case xpath::Function::kSubstringAfter:
    case xpath::Function::kTranslate:
    case xpath::Function::kFloor:
    case xpath::Function::kCeiling:
    case xpath::Function::kRound:
      return true;
    default:
      return false;
  }
}

bool IsNodeSet(const xpath::Expr& expr) {
  return xpath::StaticType(expr) == xpath::ValueType::kNodeSet;
}

void WalkExpr(const xpath::Expr& expr, bool context_named, Footprint* out) {
  switch (expr.kind()) {
    case xpath::Expr::Kind::kNumberLiteral:
    case xpath::Expr::Kind::kStringLiteral:
      return;
    case xpath::Expr::Kind::kBinary: {
      const auto& binary = expr.As<xpath::BinaryExpr>();
      // XPath 1.0 comparison/arithmetic semantics on node-sets read string
      // values: RelOps and arithmetic coerce through number(string-value),
      // =/!= compare string values — EXCEPT against a boolean operand,
      // where the node-set collapses to existence (no content observed).
      const bool lhs_nodes = IsNodeSet(binary.lhs());
      const bool rhs_nodes = IsNodeSet(binary.rhs());
      if (lhs_nodes || rhs_nodes) {
        switch (binary.op()) {
          case xpath::BinaryOp::kEq:
          case xpath::BinaryOp::kNe: {
            const xpath::ValueType other = lhs_nodes
                                               ? xpath::StaticType(binary.rhs())
                                               : xpath::StaticType(binary.lhs());
            if (lhs_nodes && rhs_nodes) {
              out->content_read = true;
            } else if (other != xpath::ValueType::kBoolean) {
              out->content_read = true;
            }
            break;
          }
          case xpath::BinaryOp::kLt:
          case xpath::BinaryOp::kLe:
          case xpath::BinaryOp::kGt:
          case xpath::BinaryOp::kGe:
          case xpath::BinaryOp::kAdd:
          case xpath::BinaryOp::kSub:
          case xpath::BinaryOp::kMul:
          case xpath::BinaryOp::kDiv:
          case xpath::BinaryOp::kMod:
            out->content_read = true;
            break;
          case xpath::BinaryOp::kOr:
          case xpath::BinaryOp::kAnd:
            break;  // boolean coercion: existence only
        }
      }
      WalkExpr(binary.lhs(), context_named, out);
      WalkExpr(binary.rhs(), context_named, out);
      return;
    }
    case xpath::Expr::Kind::kNegate: {
      const auto& negate = expr.As<xpath::NegateExpr>();
      if (IsNodeSet(negate.operand())) out->content_read = true;
      WalkExpr(negate.operand(), context_named, out);
      return;
    }
    case xpath::Expr::Kind::kFunctionCall: {
      const auto& call = expr.As<xpath::FunctionCall>();
      if (ReadsContextContent(call)) {
        out->content_read = true;
        if (!context_named) out->any_name = true;
      }
      if (ReadsContextName(call)) {
        out->name_read = true;
        if (!context_named) out->any_name = true;
      }
      const bool content_args = CoercesNodeSetArgsToContent(call.function());
      const bool name_args = call.function() == xpath::Function::kName ||
                             call.function() == xpath::Function::kLocalName;
      for (size_t i = 0; i < call.arg_count(); ++i) {
        if (content_args && IsNodeSet(call.arg(i))) out->content_read = true;
        if (name_args && IsNodeSet(call.arg(i))) out->name_read = true;
        WalkExpr(call.arg(i), context_named, out);
      }
      return;
    }
    case xpath::Expr::Kind::kPath: {
      const auto& path = expr.As<xpath::PathExpr>();
      // A bare "/" (zero steps) denotes the root node itself. Coerced to a
      // string or number — string(/), sum(/), '/ = "x"' — its value is the
      // document's full text content, which depends on no name at all; in a
      // name-covered context the coercion is unreachable when the footprint
      // is dead, so only the uncovered case must force any_name. (The
      // coercion itself is charged as content_read at the coercion site.)
      if (path.step_count() == 0 && !context_named) out->any_name = true;
      // Coverage flows forward through the step chain: the path is a
      // composition, so a dead name-tested step empties everything after
      // it. Coverage is about *reachability*, so it survives an absolute
      // path's rebinding to the root — inside a covered predicate even
      // "/child::node()" never runs once the guarding step is dead.
      bool covered = context_named;
      for (size_t s = 0; s < path.step_count(); ++s) {
        covered = WalkStep(path.step(s), covered, out);
      }
      return;
    }
    case xpath::Expr::Kind::kUnion: {
      const auto& u = expr.As<xpath::UnionExpr>();
      for (size_t b = 0; b < u.branch_count(); ++b) {
        WalkExpr(u.branch(b), context_named, out);
      }
      return;
    }
  }
}

}  // namespace

bool Footprint::Intersects(const std::vector<std::string>& changed) const {
  if (any_name) return true;
  // Both sides are sorted and duplicate-free; one linear merge pass.
  auto mine = names.begin();
  auto theirs = changed.begin();
  while (mine != names.end() && theirs != changed.end()) {
    if (*mine == *theirs) return true;
    if (*mine < *theirs) {
      ++mine;
    } else {
      ++theirs;
    }
  }
  return false;
}

bool Footprint::AffectedBy(const std::vector<std::string>& changed,
                           const xml::DocumentDelta* delta) const {
  if (Intersects(changed)) return true;  // any_name included
  // Whole-document disjointness: every footprint name is absent from both
  // revisions — the query's named steps are dead, the answer is a constant
  // of the query. Covered wildcards, content reads, and name reads are all
  // downstream of a dead guard.
  if (delta == nullptr) return false;
  // Delta-local disjointness only proves no *named selection* touches the
  // region; the three observation classes see past names (header argument).
  if (content_read && delta->content_changed) return true;
  if (wildcard && delta->structure_changed()) return true;
  if (name_read && delta->names_changed()) return true;
  return false;
}

std::string Footprint::ToString() const {
  std::string out;
  if (any_name) {
    out = "any";
  } else {
    out = "{";
    for (size_t i = 0; i < names.size(); ++i) {
      if (i > 0) out += ',';
      out += names[i];
    }
    out += '}';
  }
  if (wildcard) out += "+wild";
  if (content_read) out += "+content";
  if (name_read) out += "+name";
  return out;
}

Footprint ExtractFootprint(const xpath::Query& query) {
  Footprint out;
  WalkExpr(query.root(), /*context_named=*/false, &out);
  std::sort(out.names.begin(), out.names.end());
  out.names.erase(std::unique(out.names.begin(), out.names.end()),
                  out.names.end());
  return out;
}

}  // namespace gkx::plan
