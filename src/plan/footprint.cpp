#include "plan/footprint.hpp"

#include <algorithm>

namespace gkx::plan {

namespace {

void WalkExpr(const xpath::Expr& expr, Footprint* out);

void WalkStep(const xpath::Step& step, Footprint* out) {
  switch (step.test.kind) {
    case xpath::NodeTest::Kind::kName:
      out->names.push_back(step.test.name);
      break;
    case xpath::NodeTest::Kind::kAny:
    case xpath::NodeTest::Kind::kNode:
      out->any_name = true;
      break;
  }
  for (const xpath::ExprPtr& predicate : step.predicates) {
    WalkExpr(*predicate, out);
  }
}

void WalkExpr(const xpath::Expr& expr, Footprint* out) {
  switch (expr.kind()) {
    case xpath::Expr::Kind::kNumberLiteral:
    case xpath::Expr::Kind::kStringLiteral:
      return;
    case xpath::Expr::Kind::kBinary: {
      const auto& binary = expr.As<xpath::BinaryExpr>();
      WalkExpr(binary.lhs(), out);
      WalkExpr(binary.rhs(), out);
      return;
    }
    case xpath::Expr::Kind::kNegate:
      WalkExpr(expr.As<xpath::NegateExpr>().operand(), out);
      return;
    case xpath::Expr::Kind::kFunctionCall: {
      const auto& call = expr.As<xpath::FunctionCall>();
      for (size_t i = 0; i < call.arg_count(); ++i) WalkExpr(call.arg(i), out);
      return;
    }
    case xpath::Expr::Kind::kPath: {
      const auto& path = expr.As<xpath::PathExpr>();
      for (size_t s = 0; s < path.step_count(); ++s) WalkStep(path.step(s), out);
      return;
    }
    case xpath::Expr::Kind::kUnion: {
      const auto& u = expr.As<xpath::UnionExpr>();
      for (size_t b = 0; b < u.branch_count(); ++b) WalkExpr(u.branch(b), out);
      return;
    }
  }
}

}  // namespace

bool Footprint::Intersects(const std::vector<std::string>& changed) const {
  if (any_name) return true;
  // Both sides are sorted and duplicate-free; one linear merge pass.
  auto mine = names.begin();
  auto theirs = changed.begin();
  while (mine != names.end() && theirs != changed.end()) {
    if (*mine == *theirs) return true;
    if (*mine < *theirs) {
      ++mine;
    } else {
      ++theirs;
    }
  }
  return false;
}

std::string Footprint::ToString() const {
  if (any_name) return "any";
  std::string out = "{";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ',';
    out += names[i];
  }
  out += '}';
  return out;
}

Footprint ExtractFootprint(const xpath::Query& query) {
  Footprint out;
  WalkExpr(query.root(), &out);
  std::sort(out.names.begin(), out.names.end());
  out.names.erase(std::unique(out.names.begin(), out.names.end()),
                  out.names.end());
  return out;
}

}  // namespace gkx::plan
