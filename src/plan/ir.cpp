#include "plan/ir.hpp"

#include <utility>

#include "base/check.hpp"
#include "eval/core_linear_evaluator.hpp"
#include "eval/cvt_evaluator.hpp"
#include "eval/pf_evaluator.hpp"
#include "xpath/printer.hpp"

namespace gkx::plan {

std::string_view RouteName(Route route) {
  switch (route) {
    case Route::kPfFrontier: return "pf-frontier";
    case Route::kCoreLinear: return "core-linear";
    case Route::kCvt: return "cvt";
  }
  GKX_CHECK(false);
  return {};
}

std::string_view RouteEvaluatorName(Route route) {
  // Name-only instances: the engines carry no construction-time state, and
  // routing through their name() keeps the labels in lockstep with the
  // strings execution reports.
  static const eval::PfEvaluator pf_names;
  static const eval::CoreLinearEvaluator linear_names;
  static const eval::CvtEvaluator cvt_names;
  switch (route) {
    case Route::kPfFrontier: return pf_names.name();
    case Route::kCoreLinear: return linear_names.name();
    case Route::kCvt: return cvt_names.name();
  }
  GKX_CHECK(false);
  return {};
}

Logical Normalize(xpath::Query parsed) {
  xpath::OptimizeStats rewrites;
  Logical out{xpath::Optimize(parsed, &rewrites)};
  out.rewrites = rewrites;
  out.canonical_text = xpath::ToXPathString(out.query);
  return out;
}

void ClassifyOps(Logical* logical, const xpath::ClassifyOptions& options) {
  const xpath::Query& query = logical->query;
  logical->fragment = xpath::Classify(query, options);
  logical->steps.assign(static_cast<size_t>(query.num_steps()), StepPlan{});
  for (int id = 0; id < query.num_steps(); ++id) {
    const xpath::Step& step = query.step(id);
    StepPlan& plan = logical->steps[static_cast<size_t>(id)];
    if (step.predicates.empty()) {
      plan.route = Route::kPfFrontier;
      continue;
    }
    for (const xpath::ExprPtr& predicate : step.predicates) {
      xpath::ConditionReport report = xpath::ClassifyCondition(*predicate);
      if (!report.in_core) {
        plan.core_predicates = false;
        if (plan.note.empty()) plan.note = std::move(report.note);
      }
    }
    plan.route = plan.core_predicates ? Route::kCoreLinear : Route::kCvt;
  }
  logical->classified = true;
}

}  // namespace gkx::plan
