#include "plan/physical.hpp"

#include <utility>

#include "base/check.hpp"

namespace gkx::plan {

namespace {

Route WholeQueryRoute(const xpath::FragmentReport& fragment) {
  if (fragment.in_pf) return Route::kPfFrontier;
  if (fragment.in_core) return Route::kCoreLinear;
  return Route::kCvt;
}

/// Fuses the top-level steps of `path` into contiguous same-route segments.
std::vector<Segment> FuseSegments(const xpath::PathExpr& path,
                                  const std::vector<StepPlan>& steps) {
  std::vector<Segment> segments;
  for (int s = 0; s < static_cast<int>(path.step_count()); ++s) {
    const xpath::Step& step = path.step(static_cast<size_t>(s));
    const Route route = steps[static_cast<size_t>(step.id)].route;
    if (!segments.empty() && segments.back().route == route) {
      segments.back().step_end = s + 1;
    } else {
      segments.push_back(Segment{route, s, s + 1});
    }
  }
  return segments;
}

/// Cost-model boundary placement: a short bitset segment sandwiched between
/// two cvt segments pays two NodeBitset⇄NodeSet materializations for a
/// handful of sweeps. Running those steps on the (already bound) cvt engine
/// is sound — cvt evaluates the full fragment — and removes both seams, so
/// demote while the CostModel says the boundaries dominate, then re-fuse.
void DemoteSandwichedSegments(std::vector<Segment>* segments) {
  const int max_steps = kDefaultCostModel.max_demoted_steps();
  bool demoted = false;
  for (size_t i = 1; i + 1 < segments->size(); ++i) {
    Segment& mid = (*segments)[i];
    if (mid.route != Route::kCvt && (*segments)[i - 1].route == Route::kCvt &&
        (*segments)[i + 1].route == Route::kCvt &&
        mid.step_end - mid.step_begin <= max_steps) {
      mid.route = Route::kCvt;
      demoted = true;
    }
  }
  if (!demoted) return;
  std::vector<Segment> fused;
  for (const Segment& segment : *segments) {
    if (!fused.empty() && fused.back().route == segment.route) {
      fused.back().step_end = segment.step_end;
    } else {
      fused.push_back(segment);
    }
  }
  *segments = std::move(fused);
}

}  // namespace

Physical Lower(Logical logical) {
  GKX_CHECK(logical.classified);
  Physical out{std::move(logical.query)};
  out.canonical_text = std::move(logical.canonical_text);
  out.fragment = std::move(logical.fragment);
  out.steps = std::move(logical.steps);
  out.choice = WholeQueryRoute(out.fragment);
  out.footprint = ExtractFootprint(out.query);

  // Collect the top-level branch paths (root path, or union of paths).
  // Anything else — scalar roots, unions with non-path branches — keeps
  // whole-query dispatch.
  const xpath::Expr& root = out.query.root();
  std::vector<const xpath::PathExpr*> paths;
  if (root.kind() == xpath::Expr::Kind::kPath) {
    paths.push_back(&root.As<xpath::PathExpr>());
  } else if (root.kind() == xpath::Expr::Kind::kUnion) {
    const auto& u = root.As<xpath::UnionExpr>();
    for (size_t i = 0; i < u.branch_count(); ++i) {
      if (u.branch(i).kind() != xpath::Expr::Kind::kPath) {
        paths.clear();
        break;
      }
      paths.push_back(&u.branch(i).As<xpath::PathExpr>());
    }
  }

  bool any_cvt = false;
  bool any_bitset = false;
  std::vector<BranchProgram> branches;
  for (const xpath::PathExpr* path : paths) {
    BranchProgram branch;
    branch.path = path;
    branch.segments = FuseSegments(*path, out.steps);
    DemoteSandwichedSegments(&branch.segments);
    for (const Segment& segment : branch.segments) {
      (segment.route == Route::kCvt ? any_cvt : any_bitset) = true;
    }
    branches.push_back(std::move(branch));
  }

  // Stage only genuine hybrids: a uniform plan runs the classic dispatch at
  // identical cost, so staging it would only churn labels.
  out.staged = any_cvt && any_bitset;
  if (!out.staged) {
    out.route_label = std::string(RouteEvaluatorName(out.choice));
    return out;
  }

  out.branches = std::move(branches);
  for (const BranchProgram& branch : out.branches) {
    for (const Segment& segment : branch.segments) {
      const std::string_view name = RouteName(segment.route);
      if (!out.route_label.empty()) {
        // Collapse consecutive duplicates across branch boundaries.
        const size_t at = out.route_label.rfind('+');
        const std::string_view last =
            std::string_view(out.route_label)
                .substr(at == std::string::npos ? 0 : at + 1);
        if (last == name) continue;
        out.route_label += '+';
      }
      out.route_label += name;
    }
  }
  return out;
}

Physical Compile(xpath::Query parsed) {
  Logical logical = Normalize(std::move(parsed));
  ClassifyOps(&logical);
  return Lower(std::move(logical));
}

}  // namespace gkx::plan
