#include "plan/exec.hpp"

#include <utility>

#include "eval/core_linear_evaluator.hpp"
#include "eval/cvt_evaluator.hpp"
#include "eval/node_set.hpp"
#include "obs/trace.hpp"

namespace gkx::plan {

using eval::NodeBitset;
using eval::NodeSet;
using eval::Value;

namespace {

/// One staged-path execution: private engine instances so concurrent
/// executions never share scratch state, bound once so memo tables persist
/// across segments of the same run.
class StagedRun {
 public:
  StagedRun(const xml::Document& doc, const Physical& plan)
      : doc_(doc), plan_(plan) {
    linear_.Bind(doc);
  }

  Status BindCvt() { return cvt_.Bind(doc_, plan_.query); }

  Result<NodeBitset> RunBranch(const BranchProgram& branch,
                               const eval::Context& ctx, ExecTrace* trace) {
    NodeBitset frontier(doc_.size());
    frontier.Set(branch.path->absolute() ? doc_.root() : ctx.node);
    for (const Segment& segment : branch.segments) {
      if (frontier.Empty()) {
        if (trace == nullptr) break;
        // Traced runs report every segment (0.0s when skipped) so trace
        // length always equals the plan's segment count — the exactness the
        // soak reconciliation relies on.
        trace->push_back({segment.route, 0.0});
        continue;
      }
      const uint64_t t0 = trace != nullptr ? obs::NowNs() : 0;
      switch (segment.route) {
        case Route::kPfFrontier:
        case Route::kCoreLinear: {
          // Bitset-native: frontier sweeps (a predicate-free step and a
          // Core-condition step differ only in the condition intersection).
          auto swept = linear_.EvalStepRange(
              *branch.path, static_cast<size_t>(segment.step_begin),
              static_cast<size_t>(segment.step_end), frontier);
          if (!swept.ok()) return swept.status();
          frontier = *std::move(swept);
          break;
        }
        case Route::kCvt: {
          // Materialization boundary: bitset -> document-order node set,
          // per-origin step application on the CVT engine, and back.
          NodeSet current = frontier.ToNodeSet();
          for (int s = segment.step_begin;
               s < segment.step_end && !current.empty(); ++s) {
            const xpath::Step& step =
                branch.path->step(static_cast<size_t>(s));
            NodeSet next;
            for (xml::NodeId origin : current) {
              GKX_RETURN_IF_ERROR(cvt_.ApplyBoundStep(step, origin, &next));
            }
            eval::SortUnique(&next);
            current = std::move(next);
          }
          frontier = NodeBitset::FromNodeSet(current, doc_.size());
          break;
        }
      }
      if (trace != nullptr) {
        trace->push_back(
            {segment.route, static_cast<double>(obs::NowNs() - t0) * 1e-9});
      }
    }
    return frontier;
  }

 private:
  const xml::Document& doc_;
  const Physical& plan_;
  eval::CoreLinearEvaluator linear_;
  eval::CvtEvaluator cvt_;
};

}  // namespace

Result<Value> ExecuteStaged(const xml::Document& doc, const Physical& plan,
                            const eval::Context& ctx, ExecTrace* trace) {
  GKX_CHECK(plan.staged);
  if (doc.empty()) return InvalidArgumentError("empty document");
  StagedRun run(doc, plan);
  GKX_RETURN_IF_ERROR(run.BindCvt());
  NodeBitset merged(doc.size());
  for (const BranchProgram& branch : plan.branches) {
    auto result = run.RunBranch(branch, ctx, trace);
    if (!result.ok()) return result.status();
    merged |= *result;
  }
  return Value::Nodes(merged.ToNodeSet());
}

}  // namespace gkx::plan
