#include "plan/exec.hpp"

#include <algorithm>
#include <utility>

#include "eval/core_linear_evaluator.hpp"
#include "eval/cvt_evaluator.hpp"
#include "eval/node_set.hpp"
#include "obs/trace.hpp"

namespace gkx::plan {

using eval::NodeBitset;
using eval::NodeSet;
using eval::Value;

namespace {

/// One staged-path execution. By default the run owns private engine
/// instances (concurrent executions never share scratch state), bound once
/// so memo tables persist across segments of the same run; a caller with a
/// long-lived engine passes its evaluators via ExecOptions and keeps those
/// binds warm ACROSS runs of the same (document, plan). With workers > 1
/// the bitset engine partitions its sweeps and the cvt engine switches its
/// memo into concurrent (shared-lock) mode; answers are byte-identical
/// either way.
class StagedRun {
 public:
  StagedRun(const xml::Document& doc, const Physical& plan,
            const ExecOptions& opts, ExecStats* stats)
      : doc_(doc),
        plan_(plan),
        opts_(opts),
        stats_(stats),
        linear_(opts.linear != nullptr ? *opts.linear : own_linear_),
        cvt_(opts.cvt != nullptr ? *opts.cvt : own_cvt_) {
    if (opts_.workers > 1 && opts_.pool == nullptr) {
      opts_.pool = &ThreadPool::Shared();
    }
    linear_.set_sweep_options(eval::SweepOptions{
        opts_.pool, opts_.workers, opts_.min_parallel_nodes});
    cvt_.set_concurrent(opts_.workers > 1);
    linear_.Bind(doc);
  }

  Status BindCvt() { return cvt_.Bind(doc_, plan_.query); }

  Result<NodeBitset> RunBranch(const BranchProgram& branch,
                               const eval::Context& ctx, ExecTrace* trace) {
    NodeBitset frontier(doc_.size());
    frontier.Set(branch.path->absolute() ? doc_.root() : ctx.node);
    for (const Segment& segment : branch.segments) {
      if (frontier.Empty()) {
        if (trace == nullptr && stats_ == nullptr) break;
        // Traced/counted runs report every segment (0.0s / one `skipped`
        // increment) so trace length and the stats bucket sum always equal
        // the plan's segment count — the exactness the soak reconciliation
        // relies on.
        if (trace != nullptr) trace->push_back({segment.route, 0.0});
        if (stats_ != nullptr) {
          stats_->skipped_segments.fetch_add(1, std::memory_order_relaxed);
        }
        continue;
      }
      const uint64_t t0 = trace != nullptr ? obs::NowNs() : 0;
      bool ran_parallel = false;
      switch (segment.route) {
        case Route::kPfFrontier:
        case Route::kCoreLinear: {
          // Bitset-native: frontier sweeps (a predicate-free step and a
          // Core-condition step differ only in the condition intersection).
          // Partitioning happens inside the evaluator, per sweep; whether
          // it forks is a pure function of the options and |D|.
          ran_parallel =
              opts_.workers > 1 && doc_.size() >= opts_.min_parallel_nodes;
          auto swept = linear_.EvalStepRange(
              *branch.path, static_cast<size_t>(segment.step_begin),
              static_cast<size_t>(segment.step_end), frontier);
          if (!swept.ok()) return swept.status();
          frontier = *std::move(swept);
          break;
        }
        case Route::kCvt: {
          // Materialization boundary: bitset -> document-order node set,
          // per-origin step application on the CVT engine, and back.
          NodeSet current = frontier.ToNodeSet();
          for (int s = segment.step_begin;
               s < segment.step_end && !current.empty(); ++s) {
            const xpath::Step& step =
                branch.path->step(static_cast<size_t>(s));
            auto next = ApplyCvtStep(step, current, &ran_parallel);
            if (!next.ok()) return next.status();
            current = *std::move(next);
          }
          frontier = NodeBitset::FromNodeSet(current, doc_.size());
          break;
        }
      }
      if (stats_ != nullptr) {
        (ran_parallel ? stats_->parallel_segments
                      : stats_->sequential_segments)
            .fetch_add(1, std::memory_order_relaxed);
      }
      if (trace != nullptr) {
        trace->push_back(
            {segment.route, static_cast<double>(obs::NowNs() - t0) * 1e-9});
      }
    }
    return frontier;
  }

 private:
  /// One cvt step over all origins. Past the cost-model threshold the
  /// origin list (document order) splits into contiguous chunks, each
  /// worker appends its survivors to a private set, and the chunks
  /// concatenate in order before the canonical SortUnique — so the result
  /// is the exact set the sequential loop produces. The workers share the
  /// bound engine's memo tables (concurrent mode: hits take shared locks).
  Result<NodeSet> ApplyCvtStep(const xpath::Step& step, const NodeSet& origins,
                               bool* ran_parallel) {
    const int n = static_cast<int>(origins.size());
    int chunks = 1;
    if (opts_.workers > 1 && opts_.min_parallel_origins > 0) {
      chunks = std::min(opts_.workers, n / opts_.min_parallel_origins);
    }
    if (chunks < 2) {
      NodeSet next;
      for (xml::NodeId origin : origins) {
        GKX_RETURN_IF_ERROR(cvt_.ApplyBoundStep(step, origin, &next));
      }
      eval::SortUnique(&next);
      return next;
    }

    *ran_parallel = true;
    const int per = (n + chunks - 1) / chunks;
    std::vector<NodeSet> parts(static_cast<size_t>(chunks));
    std::vector<Status> statuses(static_cast<size_t>(chunks), Status::Ok());
    opts_.pool->ParallelFor(chunks, [&](int c) {
      const int begin = c * per;
      const int end = std::min(n, begin + per);
      NodeSet& part = parts[static_cast<size_t>(c)];
      for (int i = begin; i < end; ++i) {
        Status status = cvt_.ApplyBoundStep(
            step, origins[static_cast<size_t>(i)], &part);
        if (!status.ok()) {
          statuses[static_cast<size_t>(c)] = std::move(status);
          return;
        }
      }
    });
    size_t total = 0;
    for (int c = 0; c < chunks; ++c) {
      GKX_RETURN_IF_ERROR(statuses[static_cast<size_t>(c)]);
      total += parts[static_cast<size_t>(c)].size();
    }
    NodeSet next;
    next.reserve(total);
    for (const NodeSet& part : parts) {
      next.insert(next.end(), part.begin(), part.end());
    }
    eval::SortUnique(&next);
    return next;
  }

  const xml::Document& doc_;
  const Physical& plan_;
  ExecOptions opts_;
  ExecStats* stats_;
  // Fallback engines when the caller didn't lend long-lived ones; the
  // references (declared after, so they initialize after) select between
  // the owned and the lent instances.
  eval::CoreLinearEvaluator own_linear_;
  eval::CvtEvaluator own_cvt_;
  eval::CoreLinearEvaluator& linear_;
  eval::CvtEvaluator& cvt_;
};

}  // namespace

Result<Value> ExecuteStaged(const xml::Document& doc, const Physical& plan,
                            const eval::Context& ctx, ExecTrace* trace,
                            const ExecOptions& opts, ExecStats* stats) {
  GKX_CHECK(plan.staged);
  if (doc.empty()) return InvalidArgumentError("empty document");
  // Buffer the per-segment counts locally and flush only on success: the
  // caller's dispatch counters count successful staged runs, and the
  // reconciliation invariant (parallel + sequential + skipped == dispatched
  // segments) must hold exactly — a run that fails mid-branch contributes
  // to neither side.
  ExecStats local;
  StagedRun run(doc, plan, opts, stats != nullptr ? &local : nullptr);
  GKX_RETURN_IF_ERROR(run.BindCvt());
  NodeBitset merged(doc.size());
  for (const BranchProgram& branch : plan.branches) {
    auto result = run.RunBranch(branch, ctx, trace);
    if (!result.ok()) return result.status();
    merged |= *result;
  }
  if (stats != nullptr) {
    stats->parallel_segments.fetch_add(
        local.parallel_segments.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    stats->sequential_segments.fetch_add(
        local.sequential_segments.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    stats->skipped_segments.fetch_add(
        local.skipped_segments.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  return Value::Nodes(merged.ToNodeSet());
}

}  // namespace gkx::plan
