// The physical program: stage 3 of the compile pipeline (see ir.hpp).
//
// Lower() fuses contiguous same-engine runs of steps into pipeline
// segments. A bitset-native segment (pf-frontier / core-linear) flows a
// NodeBitset frontier from step to step in O(|D|) sweeps; a cvt segment
// evaluates its steps per origin node through the context-value tables.
// Between a bitset segment and a cvt segment sits an explicit
// materialization boundary (NodeBitset ⇄ document-order NodeSet) — the only
// points where representation conversion happens, so a mixed query pays for
// generality exactly where it uses it.
//
// A plan is *staged* only when it genuinely mixes routes (some segment
// needs CVT and some does not). Uniform plans keep the classic whole-query
// dispatch — same engines, same labels, zero overhead — so staging is a
// strict refinement of the old {AST, fragment, Choice} plan.
//
// Physical plans are immutable after Lower and safe to share across
// threads; the PlanCache hands them out as shared_ptr<const Physical>.

#ifndef GKX_PLAN_PHYSICAL_HPP_
#define GKX_PLAN_PHYSICAL_HPP_

#include <string>
#include <string_view>
#include <vector>

#include "plan/footprint.hpp"
#include "plan/ir.hpp"

namespace gkx::plan {

/// Measured per-route execution costs, in relative units of one O(|D|)
/// bitset sweep. The constants come from the BENCH_fragments hybrid census
/// on the committed 8k-node deep corpus (bench/bench_fig1_fragments.cpp,
/// seed 4242): a NodeBitset⇄NodeSet materialization boundary costs about
/// two sweeps (bit-iteration + document-order set build), and a cvt step
/// over a typical mid-plan frontier about three and a half. Lower uses them
/// to place materialization boundaries; the runtime thresholds below decide
/// per segment whether a sweep/origin loop is worth forking (tiny frontiers
/// must not pay fork/join overhead).
struct CostModel {
  double sweep_step = 1.0;   // one bitset axis sweep over |D|
  double boundary = 1.9;     // one NodeBitset⇄NodeSet conversion
  double cvt_step = 3.4;     // one per-origin cvt step, mid-plan frontier

  /// Smallest document for which partitioned bitset sweeps beat one thread
  /// (fork/join ≈ a few µs; a 4k-node sweep is ~0.5µs/word-pass).
  int32_t min_parallel_nodes = 4096;
  /// Smallest origin count for which the per-origin cvt loop fans out.
  int min_parallel_origins = 16;

  /// Longest bitset segment worth demoting to cvt when it sits between two
  /// cvt segments: running s steps on the (already bound) cvt engine costs
  /// cvt_step·s but removes the two materialization boundaries around it;
  /// demotion wins while cvt_step·s < sweep_step·s + 2·boundary.
  int max_demoted_steps() const {
    return static_cast<int>(2.0 * boundary / (cvt_step - sweep_step));
  }
};

inline constexpr CostModel kDefaultCostModel{};

/// A fused run of steps [step_begin, step_end) of one branch path, all
/// executed by the same engine.
struct Segment {
  Route route = Route::kPfFrontier;
  int step_begin = 0;
  int step_end = 0;
};

/// The staged program for one top-level location path (the root path, or
/// one branch of a root union).
struct BranchProgram {
  const xpath::PathExpr* path = nullptr;  // borrowed from Physical::query
  std::vector<Segment> segments;
};

/// A compiled, immutable physical plan. `eval::Engine::Plan` is an alias of
/// this type; the legacy fields (query / fragment / choice) keep their old
/// names so the migration is source-compatible.
struct Physical {
  xpath::Query query;              // normalized AST (owns the tree)
  std::string canonical_text;      // the PlanCache normal form
  xpath::FragmentReport fragment;  // whole-query report
  std::vector<StepPlan> steps;     // per-step annotations, by Step::id

  /// Whole-query route — the dispatch used when the plan is not staged,
  /// and what classic whole-query dispatch would have chosen regardless.
  Route choice = Route::kCvt;

  /// True when execution runs the segment pipeline; false = single-engine.
  bool staged = false;
  std::vector<BranchProgram> branches;  // non-empty iff staged

  /// The per-segment route list, e.g. "pf-frontier+cvt+pf-frontier"
  /// (consecutive duplicates collapsed); for uniform plans this is just the
  /// evaluator name. This is what Engine::Answer.evaluator reports.
  std::string route_label;

  /// Conservative tag/axis dependency set (see footprint.hpp) — what the
  /// mview answer cache and subscription manager key invalidation on.
  Footprint footprint;

  std::string_view evaluator_name() const { return route_label; }
};

/// Stage 3: segment fusion. `logical` must be classified (ClassifyOps).
Physical Lower(Logical logical);

/// The whole pipeline: Normalize + ClassifyOps + Lower.
Physical Compile(xpath::Query parsed);

}  // namespace gkx::plan

#endif  // GKX_PLAN_PHYSICAL_HPP_
