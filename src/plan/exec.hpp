// Hybrid execution of a staged Physical plan (stage 4 of the pipeline in
// ir.hpp). Bitset-native segments run as frontier sweeps; cvt segments run
// per origin node through a context-value-table engine bound to the plan's
// query (so predicate memoization is shared across origins and segments);
// the materialization boundaries convert NodeBitset ⇄ document-order
// NodeSet exactly at segment seams. Answers are byte-identical to what any
// single whole-query engine produces — the evaluator-agreement and soak
// suites pin this against the naive oracle.

#ifndef GKX_PLAN_EXEC_HPP_
#define GKX_PLAN_EXEC_HPP_

#include "base/status.hpp"
#include "eval/context.hpp"
#include "eval/value.hpp"
#include "plan/physical.hpp"

namespace gkx::plan {

/// Runs a staged plan (plan.staged must be true) from `ctx`. Thread-safe:
/// all scratch state is local to the call; the plan is only read.
Result<eval::Value> ExecuteStaged(const xml::Document& doc,
                                  const Physical& plan,
                                  const eval::Context& ctx);

}  // namespace gkx::plan

#endif  // GKX_PLAN_EXEC_HPP_
