// Hybrid execution of a staged Physical plan (stage 4 of the pipeline in
// ir.hpp). Bitset-native segments run as frontier sweeps; cvt segments run
// per origin node through a context-value-table engine bound to the plan's
// query (so predicate memoization is shared across origins and segments);
// the materialization boundaries convert NodeBitset ⇄ document-order
// NodeSet exactly at segment seams. Answers are byte-identical to what any
// single whole-query engine produces — the evaluator-agreement and soak
// suites pin this against the naive oracle.

#ifndef GKX_PLAN_EXEC_HPP_
#define GKX_PLAN_EXEC_HPP_

#include <atomic>
#include <cstdint>
#include <vector>

#include "base/status.hpp"
#include "base/thread_pool.hpp"
#include "eval/context.hpp"
#include "eval/value.hpp"
#include "plan/physical.hpp"

namespace gkx::eval {
class CoreLinearEvaluator;
class CvtEvaluator;
}  // namespace gkx::eval

namespace gkx::plan {

/// Intra-query parallelism knobs. The defaults come straight from the
/// CostModel (physical.hpp): workers <= 1 keeps the whole execution
/// sequential; otherwise bitset segments partition their sweeps into
/// word-aligned preorder intervals and cvt segments fan their per-origin
/// loop out — but only past the thresholds, so a tiny frontier never pays
/// fork/join overhead.
struct ExecOptions {
  /// Pool to fan out on; nullptr with workers > 1 = ThreadPool::Shared().
  ThreadPool* pool = nullptr;
  /// Concurrent workers per segment (the calling thread participates).
  int workers = 1;
  /// Below this document size, bitset sweeps stay sequential.
  int32_t min_parallel_nodes = kDefaultCostModel.min_parallel_nodes;
  /// Below this origin count, the per-origin cvt loop stays sequential.
  int min_parallel_origins = kDefaultCostModel.min_parallel_origins;
  /// Optional long-lived bound engines (the prepared-statement pattern).
  /// When set, ExecuteStaged runs on these instead of run-private
  /// instances, so the test-set bitsets and context-value tables persist
  /// across runs: re-executing the same plan on the same document turns
  /// memo fills into memo hits. The evaluators detect same-binding reuse
  /// by (address, serial) identity — see base/identity.hpp — and rebuild
  /// automatically when the document or plan actually changed, so answers
  /// are byte-identical to a cold run. The caller must not share one
  /// evaluator across concurrent ExecuteStaged calls (eval::Engine passes
  /// its own members; Engine is single-threaded by contract).
  eval::CoreLinearEvaluator* linear = nullptr;
  eval::CvtEvaluator* cvt = nullptr;
};

/// How staged segments actually executed. Shared across concurrent
/// executions (the service owns one and hands it to every engine), so the
/// counters are atomic. The invariant the soak reconciliation checks:
///   parallel + sequential + skipped == total staged segments dispatched,
/// exactly — every segment of every executed staged plan lands in exactly
/// one bucket (skipped = its frontier was already empty).
struct ExecStats {
  std::atomic<int64_t> parallel_segments{0};
  std::atomic<int64_t> sequential_segments{0};
  std::atomic<int64_t> skipped_segments{0};
};

/// Wall-clock of one executed segment. When a trace is requested, EVERY
/// segment of every branch gets exactly one entry in plan order — segments
/// skipped because the frontier emptied report 0.0 seconds — so the trace's
/// length always equals the plan's segment count and per-route trace counts
/// reconcile exactly against per-segment dispatch counters.
struct SegmentTiming {
  Route route = Route::kPfFrontier;
  double seconds = 0.0;
};
using ExecTrace = std::vector<SegmentTiming>;

/// Runs a staged plan (plan.staged must be true) from `ctx`. Thread-safe:
/// all scratch state is local to the call; the plan is only read. When
/// `trace` is non-null, per-segment timings are appended to it. `opts`
/// controls intra-query parallelism (default: sequential); `stats`, when
/// non-null, receives one parallel/sequential/skipped increment per
/// segment. Answers are byte-identical across every (workers, thresholds)
/// setting — parallelism never changes the value, only the wall-clock.
Result<eval::Value> ExecuteStaged(const xml::Document& doc,
                                  const Physical& plan,
                                  const eval::Context& ctx,
                                  ExecTrace* trace = nullptr,
                                  const ExecOptions& opts = {},
                                  ExecStats* stats = nullptr);

}  // namespace gkx::plan

#endif  // GKX_PLAN_EXEC_HPP_
