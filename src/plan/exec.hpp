// Hybrid execution of a staged Physical plan (stage 4 of the pipeline in
// ir.hpp). Bitset-native segments run as frontier sweeps; cvt segments run
// per origin node through a context-value-table engine bound to the plan's
// query (so predicate memoization is shared across origins and segments);
// the materialization boundaries convert NodeBitset ⇄ document-order
// NodeSet exactly at segment seams. Answers are byte-identical to what any
// single whole-query engine produces — the evaluator-agreement and soak
// suites pin this against the naive oracle.

#ifndef GKX_PLAN_EXEC_HPP_
#define GKX_PLAN_EXEC_HPP_

#include <vector>

#include "base/status.hpp"
#include "eval/context.hpp"
#include "eval/value.hpp"
#include "plan/physical.hpp"

namespace gkx::plan {

/// Wall-clock of one executed segment. When a trace is requested, EVERY
/// segment of every branch gets exactly one entry in plan order — segments
/// skipped because the frontier emptied report 0.0 seconds — so the trace's
/// length always equals the plan's segment count and per-route trace counts
/// reconcile exactly against per-segment dispatch counters.
struct SegmentTiming {
  Route route = Route::kPfFrontier;
  double seconds = 0.0;
};
using ExecTrace = std::vector<SegmentTiming>;

/// Runs a staged plan (plan.staged must be true) from `ctx`. Thread-safe:
/// all scratch state is local to the call; the plan is only read. When
/// `trace` is non-null, per-segment timings are appended to it.
Result<eval::Value> ExecuteStaged(const xml::Document& doc,
                                  const Physical& plan,
                                  const eval::Context& ctx,
                                  ExecTrace* trace = nullptr);

}  // namespace gkx::plan

#endif  // GKX_PLAN_EXEC_HPP_
