// The staged query-plan IR. Compilation is a three-stage pipeline:
//
//   parse  ──► Normalize ──► ClassifyOps ──► Lower ──► (execute)
//              (Logical)     (per-op routes)  (Physical)
//
// Normalize lowers the parsed AST into the plan's logical form: the
// semantics-preserving canonical rewrites (xpath::Optimize) plus the
// canonical spelling that the PlanCache keys equivalence classes by — one
// normal form shared by cache aliasing and planning.
//
// ClassifyOps applies the paper's Figure 1 taxonomy *per subexpression*
// instead of per query: every location step is annotated with the cheapest
// sound engine for it (predicate-free → the NL frontier sweep; Core-bexpr
// predicates → the O(|D|·|Q|) condition-set engine; anything else → the
// polynomial context-value tables). This is what lets a mixed query keep
// its path spine on the bitset fast path and drop into CVT only for the
// offending predicate subtree (see physical.hpp / exec.hpp).

#ifndef GKX_PLAN_IR_HPP_
#define GKX_PLAN_IR_HPP_

#include <string>
#include <string_view>
#include <vector>

#include "xpath/ast.hpp"
#include "xpath/fragment.hpp"
#include "xpath/optimize.hpp"

namespace gkx::plan {

/// Which engine an op (or a whole plan) is routed to.
enum class Route { kPfFrontier, kCoreLinear, kCvt };

/// Segment-level route label ("pf-frontier", "core-linear", "cvt") — the
/// tokens joined with '+' in a hybrid plan's evaluator string.
std::string_view RouteName(Route route);

/// Name of the evaluator a whole-query route dispatches to (taken from the
/// engines' own name() strings, so it cannot drift from what execution
/// reports: "pf-frontier", "core-linear", "cvt-lazy").
std::string_view RouteEvaluatorName(Route route);

/// Per-step annotation produced by ClassifyOps.
struct StepPlan {
  Route route = Route::kPfFrontier;
  bool core_predicates = true;  // every predicate is a Core bexpr (Def 2.5)
  std::string note;             // first reason a predicate exceeds Core
};

/// The logical plan: the normalized query plus (after ClassifyOps) the
/// per-subexpression fragment annotations.
struct Logical {
  xpath::Query query;          // normalized (canonical-rewritten) AST
  std::string canonical_text;  // canonical spelling == PlanCache alias key
  xpath::OptimizeStats rewrites;

  bool classified = false;
  xpath::FragmentReport fragment;  // whole-query report (normalized form)
  std::vector<StepPlan> steps;     // indexed by Step::id (includes nested steps)
};

/// Stage 1: canonical rewrites + canonical spelling. Idempotent — feeding
/// the canonical text back through parse+Normalize reproduces itself.
Logical Normalize(xpath::Query parsed);

/// Stage 2: whole-query fragment report plus a per-step engine annotation
/// for every step id of the query (top-level and nested alike).
void ClassifyOps(Logical* logical,
                 const xpath::ClassifyOptions& options = {});

}  // namespace gkx::plan

#endif  // GKX_PLAN_IR_HPP_
