// The dependency extractor for materialized answers (gkx::mview): a
// conservative *name footprint* per compiled plan. The footprint is the set
// of tag/label names the plan's node tests mention, plus an `any_name` flag
// for uncovered wildcard (*)/node() tests and root-content reads.
//
// Soundness argument (why footprint-disjoint updates cannot change an
// answer): the changed-name set handed to Intersects is the union of the
// old and new revisions' full tag sets (names include extra labels, Remark
// 3.1), so a footprint name either occurs in one of the two revisions — it
// is in the set, the entry is invalidated, nothing to prove — or occurs in
// neither, and then every kName step testing it is *dead* on both
// revisions: it filters the axis image by a name no node carries, yielding
// the empty node-set, and nothing downstream of it (later steps of the
// same path, its predicates, anything inside them — reachability, not
// binding, is what counts) is ever evaluated. The document-dependent
// observations of an XPath 1.0 expression in our fragment are location
// paths (there is no attribute axis and no id()) plus reads of the context
// node's content — a bare "/" coerced to string/number (its string value
// is the document's whole text) and the zero-argument forms of string()/
// number()/string-length()/normalize-space()/name()/local-name(). The
// extractor therefore walks the query tracking *name coverage*: an
// observation guarded by some kName step (a predicate of a named step, a
// */node() test downstream of one, "//a[. = 'x']") is charged to that name
// and nothing else; an uncovered one — a top-level "/child::*" or
// "//node()", a root-content read at the top level of the query — forces
// `any_name`, and the plan is invalidated by every update of a matching
// document. With every observation either covered or any_name, a disjoint
// update leaves the whole evaluation — unions, predicates, count()/sum()/
// string() over empty sets, literals, arithmetic — a pure function of the
// query alone. Old answer == new answer, and a cached entry (or a standing
// query's last delivered diff) may be carried across the update untouched.
//
// The footprint is computed once at plan-compile time (plan::Lower) and
// travels with the immutable Physical, so invalidation never re-walks an
// AST on the churn path.

#ifndef GKX_PLAN_FOOTPRINT_HPP_
#define GKX_PLAN_FOOTPRINT_HPP_

#include <string>
#include <vector>

#include "xpath/ast.hpp"

namespace gkx::plan {

/// The conservative tag/axis dependency set of a compiled plan.
struct Footprint {
  /// True when the plan can observe document state independent of node
  /// names from an *uncovered* context — a * or node() test no kName step
  /// guards ("/child::*", "//node()"), or a root-content read at the top
  /// level of the query (a bare "/", or a zero-argument string()/number()/
  /// string-length()/normalize-space()/name()/local-name()). Every document
  /// update must then be treated as relevant. Covered occurrences — inside
  /// a predicate of a name-tested step, or downstream of one in the same
  /// path ("//a[. = 'x']", "//a/child::node()") — are unreachable once the
  /// covering name is absent, so the name alone suffices.
  bool any_name = false;
  /// Sorted, duplicate-free names mentioned by kName node tests anywhere in
  /// the query (top-level steps, predicates, function arguments, unions).
  std::vector<std::string> names;

  /// True if an update whose changed-name set is `changed` (sorted,
  /// duplicate-free) may affect this plan's answer. Empty footprints
  /// (document-independent queries like "1 + 2" or "true()") depend on no
  /// document state at all and always return false unless `any_name` is
  /// set.
  bool Intersects(const std::vector<std::string>& changed) const;

  /// "any" or "{a,b,c}" (for logs and test diagnostics).
  std::string ToString() const;
};

/// Walks the (normalized) query and collects its footprint.
Footprint ExtractFootprint(const xpath::Query& query);

}  // namespace gkx::plan

#endif  // GKX_PLAN_FOOTPRINT_HPP_
