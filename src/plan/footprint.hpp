// The dependency extractor for materialized answers (gkx::mview): a
// conservative *name footprint* per compiled plan. The footprint is the set
// of tag/label names the plan's node tests mention, plus an `any_name` flag
// for wildcard (*) and node() tests.
//
// Soundness argument (why footprint-disjoint updates cannot change an
// answer): if `any_name` is false and no footprint name occurs in either the
// old or the new revision of a document (names here include extra labels,
// Remark 3.1), then every location path in the plan is dead on both
// revisions — its first name-tested step filters the axis image by a name
// no node carries, so the path yields the empty node-set, and so does every
// continuation of it. The only document-dependent leaves of an XPath 1.0
// expression in our fragment are location paths (there is no attribute axis
// and no id()), and the root node itself is always NodeId 0, so the
// evaluation of the whole expression — unions, predicates, count()/sum()/
// string() over those empty sets, literals, arithmetic — is a pure function
// of the query alone. Old answer == new answer, and a cached entry (or a
// standing query's last delivered diff) may be carried across the update
// untouched. Any plan that could observe nodes regardless of their names
// ("/child::*", "//node()") sets `any_name` and is invalidated by every
// update of a matching document.
//
// The footprint is computed once at plan-compile time (plan::Lower) and
// travels with the immutable Physical, so invalidation never re-walks an
// AST on the churn path.

#ifndef GKX_PLAN_FOOTPRINT_HPP_
#define GKX_PLAN_FOOTPRINT_HPP_

#include <string>
#include <vector>

#include "xpath/ast.hpp"

namespace gkx::plan {

/// The conservative tag/axis dependency set of a compiled plan.
struct Footprint {
  /// True when the plan can observe nodes independent of their names (a *
  /// or node() test anywhere, including inside predicates): every document
  /// update must then be treated as relevant.
  bool any_name = false;
  /// Sorted, duplicate-free names mentioned by kName node tests anywhere in
  /// the query (top-level steps, predicates, function arguments, unions).
  std::vector<std::string> names;

  /// True if an update whose changed-name set is `changed` (sorted,
  /// duplicate-free) may affect this plan's answer. Empty footprints
  /// (e.g. the bare "/") depend on no names at all and always return false
  /// unless `any_name` is set.
  bool Intersects(const std::vector<std::string>& changed) const;

  /// "any" or "{a,b,c}" (for logs and test diagnostics).
  std::string ToString() const;
};

/// Walks the (normalized) query and collects its footprint.
Footprint ExtractFootprint(const xpath::Query& query);

}  // namespace gkx::plan

#endif  // GKX_PLAN_FOOTPRINT_HPP_
