// The dependency extractor for materialized answers (gkx::mview): a
// conservative *name footprint* per compiled plan. The footprint is the set
// of tag/label names the plan's node tests mention, an `any_name` flag for
// uncovered wildcard (*)/node() tests and root-content reads, plus three
// observation-class flags (`wildcard`, `content_read`, `name_read`) that
// let invalidation reason about *subtree-local* deltas (xml/edit.hpp).
//
// Whole-document soundness argument (why footprint-disjoint updates cannot
// change an answer): the changed-name set handed to Intersects is the union
// of the old and new revisions' full tag sets (names include extra labels,
// Remark 3.1), so a footprint name either occurs in one of the two
// revisions — it is in the set, the entry is invalidated, nothing to prove
// — or occurs in neither, and then every kName step testing it is *dead* on
// both revisions: it filters the axis image by a name no node carries,
// yielding the empty node-set, and nothing downstream of it (later steps of
// the same path, its predicates, anything inside them — reachability, not
// binding, is what counts) is ever evaluated. The document-dependent
// observations of an XPath 1.0 expression in our fragment are location
// paths (there is no attribute axis and no id()) plus reads of the context
// node's content — a bare "/" coerced to string/number (its string value
// is the document's whole text) and the zero-argument forms of string()/
// number()/string-length()/normalize-space()/name()/local-name(). The
// extractor therefore walks the query tracking *name coverage*: an
// observation guarded by some kName step (a predicate of a named step, a
// */node() test downstream of one, "//a[. = 'x']") is charged to that name
// and nothing else; an uncovered one — a top-level "/child::*" or
// "//node()", a root-content read at the top level of the query — forces
// `any_name`, and the plan is invalidated by every update of a matching
// document. With every observation either covered or any_name, a disjoint
// update leaves the whole evaluation — unions, predicates, count()/sum()/
// string() over empty sets, literals, arithmetic — a pure function of the
// query alone. Old answer == new answer, and a cached entry (or a standing
// query's last delivered diff) may be carried across the update untouched.
//
// Delta-local sharpening (AffectedBy). When the update is a subtree edit,
// the changed-name set shrinks to the names local to the edited region —
// old and new revision of the region only. Name-disjointness then no longer
// means "the query's steps are dead" (the names may thrive elsewhere in the
// document); it means "no step can *select* a region node": a kName step
// testing n selects only n-carrying nodes, and the region carries no n in
// either revision. Every node outside the region survives the splice with
// its name set, its axis relations to all other survivors, and the
// document order among survivors intact, so all name-tested selections —
// and with them position()/last()/count() over them — are the same
// structural nodes before and after. Three observation classes can still
// leak region state past name-disjointness, and each carries a flag gated
// by the matching delta fact:
//   * `wildcard` — a * or node() test anywhere (even name-covered: a
//     covering name bounds reachability, not locality — "//a/following::*"
//     can select region nodes from an a-node that merely precedes them).
//     Selection through a wildcard is structure-sensitive, so the entry is
//     invalidated when the delta changed structure; an ids-stable edit
//     (text/relabel) moves no node, and wildcard selections — which ignore
//     names — are untouched.
//   * `content_read` — any string-value observation (node-set coerced to
//     string/number in comparisons, arithmetic, or functions; zero-arg
//     string()/number()/string-length()/normalize-space()). A string value
//     concatenates descendant text in document order, so an ancestor of the
//     region reads region text even though no step selects region nodes
//     ("//a[. = 'x']" where some a sits above the region). The region is a
//     contiguous preorder run inside every enclosing subtree, so string
//     values change iff the region's concatenated text changed — the
//     delta's content_changed bit.
//   * `name_read` — name()/local-name() (zero-arg or over a node-set).
//     A relabel changes a surviving node's tag while only the old/new tags
//     enter the region name set; a plan that reaches the node through an
//     extra label and reads its *name* would otherwise slip through. Gated
//     by whether the delta changed any names at all.
// Everything else is covered by the selection argument: name-tested steps,
// predicates over them, position()/last()/count(), boolean existence
// coercions. When structure changed, surviving nodes after the region keep
// their identity but shift ids by the delta's constant — retained node-set
// answers are remapped by the cache (the answer provably contains no region
// node, so the shift is total on it).
//
// The footprint is computed once at plan-compile time (plan::Lower) and
// travels with the immutable Physical, so invalidation never re-walks an
// AST on the churn path.

#ifndef GKX_PLAN_FOOTPRINT_HPP_
#define GKX_PLAN_FOOTPRINT_HPP_

#include <string>
#include <vector>

#include "xml/edit.hpp"
#include "xpath/ast.hpp"

namespace gkx::plan {

/// The conservative tag/axis dependency set of a compiled plan.
struct Footprint {
  /// True when the plan can observe document state independent of node
  /// names from an *uncovered* context — a * or node() test no kName step
  /// guards ("/child::*", "//node()"), or a root-content read at the top
  /// level of the query (a bare "/", or a zero-argument string()/number()/
  /// string-length()/normalize-space()/name()/local-name()). Every document
  /// update must then be treated as relevant. Covered occurrences — inside
  /// a predicate of a name-tested step, or downstream of one in the same
  /// path ("//a[. = 'x']", "//a/child::node()") — are unreachable once the
  /// covering name is absent, so the name alone suffices.
  bool any_name = false;
  /// A */node() test on a downward or sideways axis occurs anywhere in the
  /// query, covered or not. Coverage is enough for whole-document
  /// disjointness (dead guard => dead wildcard) but not for
  /// delta-locality: a covered wildcard can select region nodes without
  /// naming them (see the header argument). Upward wildcards — self::
  /// ("."), parent::, ancestor(-or-self):: — are exempt: the
  /// ancestor-or-self chain of a non-region node never enters the region.
  bool wildcard = false;
  /// The plan observes some node's string value (content coercion of a
  /// node-set, or a zero-arg content function). Sensitive to any change of
  /// the region's concatenated text, wherever in the document it reads.
  bool content_read = false;
  /// The plan observes some node's tag via name()/local-name(). Sensitive
  /// to relabels the name sets would otherwise not pin to the footprint.
  bool name_read = false;
  /// Sorted, duplicate-free names mentioned by kName node tests anywhere in
  /// the query (top-level steps, predicates, function arguments, unions).
  std::vector<std::string> names;

  /// True if an update whose changed-name set is `changed` (sorted,
  /// duplicate-free) may affect this plan's answer. Empty footprints
  /// (document-independent queries like "1 + 2" or "true()") depend on no
  /// document state at all and always return false unless `any_name` is
  /// set.
  bool Intersects(const std::vector<std::string>& changed) const;

  /// The sharpened test. `changed` is the update's changed-name set:
  /// whole-document union when `delta` is null (a Put replacement — the
  /// degenerate delta), the region-local union when `delta` describes a
  /// subtree edit. With a delta, name-disjointness alone is not enough;
  /// the wildcard/content_read/name_read flags are checked against what the
  /// delta actually changed (see the header argument). False means the old
  /// answer provably equals the new one (up to the delta's id shift, which
  /// the caller remaps).
  bool AffectedBy(const std::vector<std::string>& changed,
                  const xml::DocumentDelta* delta) const;

  /// "any" or "{a,b,c}" with "+wild"/"+content"/"+name" observation-class
  /// suffixes (for logs and test diagnostics).
  std::string ToString() const;
};

/// Walks the (normalized) query and collects its footprint.
Footprint ExtractFootprint(const xpath::Query& query);

}  // namespace gkx::plan

#endif  // GKX_PLAN_FOOTPRINT_HPP_
