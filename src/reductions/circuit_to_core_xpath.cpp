#include "reductions/circuit_to_core_xpath.hpp"

#include <string>
#include <utility>

#include "xml/builder.hpp"
#include "xpath/build.hpp"

namespace gkx::reductions {

using circuits::Circuit;
using circuits::GateKind;
using xml::BuildNodeId;
using xml::TreeBuilder;
using xpath::Axis;
using xpath::ExprPtr;
using xpath::NodeTest;
namespace build = xpath::build;

namespace {

std::string ILabel(int32_t k) { return "I" + std::to_string(k); }
std::string OLabel(int32_t k) { return "O" + std::to_string(k); }

/// πk = ancestor-or-self::*[T(G) and ϕ(k-1)] — or the Corollary 3.3 variant
/// descendant-or-self::*/parent::*[T(G) and ϕ(k-1)].
ExprPtr BuildPi(ExprPtr phi_prev, bool corollary33) {
  ExprPtr condition = build::And(build::LabelTest("G"), std::move(phi_prev));
  std::vector<ExprPtr> preds;
  preds.push_back(std::move(condition));
  if (!corollary33) {
    return build::StepPath(build::AnyStep(Axis::kAncestorOrSelf, std::move(preds)));
  }
  std::vector<xpath::Step> steps;
  steps.push_back(build::AnyStep(Axis::kDescendantOrSelf));
  steps.push_back(build::AnyStep(Axis::kParent, std::move(preds)));
  return build::Path(/*absolute=*/false, std::move(steps));
}

}  // namespace

CircuitReduction CircuitToCoreXPath(const Circuit& circuit,
                                    const std::vector<bool>& assignment,
                                    const CircuitReductionOptions& options) {
  GKX_CHECK(circuit.Validate().ok());
  GKX_CHECK_EQ(circuit.output(), circuit.size() - 1);
  const int32_t m = circuit.num_inputs();
  const int32_t n = circuit.num_logic_gates();
  GKX_CHECK_EQ(static_cast<int32_t>(assignment.size()), m);
  GKX_CHECK_GE(n, 1);

  // ---- Document -----------------------------------------------------------
  TreeBuilder builder("root");
  std::vector<BuildNodeId> v(static_cast<size_t>(m + n));
  std::vector<BuildNodeId> vp(static_cast<size_t>(m + n));
  for (int32_t i = 0; i < m + n; ++i) {
    v[static_cast<size_t>(i)] = builder.AddChild(builder.root(), "n");
    builder.AddLabel(v[static_cast<size_t>(i)], "G");
    vp[static_cast<size_t>(i)] =
        builder.AddChild(v[static_cast<size_t>(i)], "n");
  }
  // Input truth values.
  for (int32_t i = 0; i < m; ++i) {
    builder.AddLabel(v[static_cast<size_t>(i)],
                     assignment[static_cast<size_t>(i)] ? "T1" : "T0");
  }
  // Wiring: gate G(M+k) (paper 1-based k; circuit index m+k-1) reading gate
  // Gi (circuit index i-1) puts I<k> on v(i).
  for (int32_t k = 1; k <= n; ++k) {
    const circuits::Gate& gate = circuit.gate(m + k - 1);
    for (int32_t in : gate.inputs) {
      builder.AddLabel(v[static_cast<size_t>(in)], ILabel(k));
    }
    builder.AddLabel(v[static_cast<size_t>(m + k - 1)], OLabel(k));
  }
  builder.AddLabel(v[static_cast<size_t>(m + n - 1)], "R");
  // v'i labels: inputs carry everything; v'(M+j) carries {I,O}<k> for k >= j.
  for (int32_t i = 0; i < m + n; ++i) {
    const int32_t from_k = i < m ? 1 : i - m + 1;
    for (int32_t k = from_k; k <= n; ++k) {
      builder.AddLabel(vp[static_cast<size_t>(i)], ILabel(k));
      builder.AddLabel(vp[static_cast<size_t>(i)], OLabel(k));
    }
  }

  // ---- Query --------------------------------------------------------------
  ExprPtr phi = build::LabelTest("T1");  // ϕ0 = T(1)
  for (int32_t k = 1; k <= n; ++k) {
    ExprPtr pi = BuildPi(std::move(phi), options.corollary33_axes);
    const bool is_and = circuit.gate(m + k - 1).kind == GateKind::kAnd;
    ExprPtr psi;
    if (is_and) {
      // ψk = not(child::*[T(Ik) and not(πk)]).
      ExprPtr inner = build::And(build::LabelTest(ILabel(k)),
                                 build::Not(std::move(pi)));
      std::vector<ExprPtr> preds;
      preds.push_back(std::move(inner));
      psi = build::Not(
          build::StepPath(build::AnyStep(Axis::kChild, std::move(preds))));
    } else {
      // ψk = child::*[T(Ik) and πk].
      ExprPtr inner = build::And(build::LabelTest(ILabel(k)), std::move(pi));
      std::vector<ExprPtr> preds;
      preds.push_back(std::move(inner));
      psi = build::StepPath(build::AnyStep(Axis::kChild, std::move(preds)));
    }
    // ϕk = descendant-or-self::*[T(Ok) and parent::*[ψk]].
    std::vector<ExprPtr> parent_preds;
    parent_preds.push_back(std::move(psi));
    ExprPtr parent_path =
        build::StepPath(build::AnyStep(Axis::kParent, std::move(parent_preds)));
    ExprPtr condition =
        build::And(build::LabelTest(OLabel(k)), std::move(parent_path));
    std::vector<ExprPtr> preds;
    preds.push_back(std::move(condition));
    phi = build::StepPath(
        build::AnyStep(Axis::kDescendantOrSelf, std::move(preds)));
  }

  // /descendant-or-self::*[T(R) and ϕN].
  std::vector<ExprPtr> root_preds;
  root_preds.push_back(build::And(build::LabelTest("R"), std::move(phi)));
  std::vector<xpath::Step> steps;
  steps.push_back(build::AnyStep(Axis::kDescendantOrSelf, std::move(root_preds)));

  CircuitReduction out{std::move(builder).Build(),
                       xpath::Query::Create(
                           build::Path(/*absolute=*/true, std::move(steps)))};
  return out;
}

}  // namespace gkx::reductions
