// Theorem 4.2: LOGCFL-hardness of positive Core XPath, by reduction from
// SAC1 circuit value. The Theorem 3.2 construction is reused with two
// changes (negation-free):
//   * every ∧-layer k gets two input labels I1<k>, I2<k>; the real gate's
//     first/second feed carries one each, and each dummy's single input line
//     v'i carries both;
//   * for ∧-gates, ψk = child::*[T(I1k) and πk] and child::*[T(I2k) and πk]
//     — the bounded (fan-in <= 2) "and" replaces the unbounded "for all" that
//     negation provided, at the cost of duplicating πk, so the query grows by
//     a factor 2 per ∧-gate in the tower (polynomial for log-depth circuits,
//     which is exactly the SAC1 promise; keep the ∧-count small here).
//
// Guarantee: the (negation-free) query result is non-empty iff the circuit
// accepts.

#ifndef GKX_REDUCTIONS_SAC_TO_POSITIVE_CORE_HPP_
#define GKX_REDUCTIONS_SAC_TO_POSITIVE_CORE_HPP_

#include <vector>

#include "circuits/circuit.hpp"
#include "reductions/circuit_to_core_xpath.hpp"

namespace gkx::reductions {

/// Builds (document, positive Core XPath query) for a semi-unbounded
/// monotone circuit (AND fan-in <= 2) and an input assignment.
CircuitReduction SacToPositiveCoreXPath(const circuits::Circuit& circuit,
                                        const std::vector<bool>& assignment);

}  // namespace gkx::reductions

#endif  // GKX_REDUCTIONS_SAC_TO_POSITIVE_CORE_HPP_
