#include "reductions/sac_to_positive_core.hpp"

#include <string>
#include <utility>

#include "xml/builder.hpp"
#include "xpath/build.hpp"

namespace gkx::reductions {

using circuits::Circuit;
using circuits::GateKind;
using xml::BuildNodeId;
using xml::TreeBuilder;
using xpath::Axis;
using xpath::ExprPtr;
namespace build = xpath::build;

namespace {

std::string I1Label(int32_t k) { return "Ia" + std::to_string(k); }
std::string I2Label(int32_t k) { return "Ib" + std::to_string(k); }
std::string ILabel(int32_t k) { return "I" + std::to_string(k); }
std::string OLabel(int32_t k) { return "O" + std::to_string(k); }

ExprPtr BuildPi(ExprPtr phi_prev) {
  ExprPtr condition = build::And(build::LabelTest("G"), std::move(phi_prev));
  std::vector<ExprPtr> preds;
  preds.push_back(std::move(condition));
  return build::StepPath(build::AnyStep(Axis::kAncestorOrSelf, std::move(preds)));
}

ExprPtr ChildCondition(const std::string& label, ExprPtr pi) {
  ExprPtr inner = build::And(build::LabelTest(label), std::move(pi));
  std::vector<ExprPtr> preds;
  preds.push_back(std::move(inner));
  return build::StepPath(build::AnyStep(Axis::kChild, std::move(preds)));
}

}  // namespace

CircuitReduction SacToPositiveCoreXPath(const Circuit& circuit,
                                        const std::vector<bool>& assignment) {
  GKX_CHECK(circuit.Validate().ok());
  GKX_CHECK(circuit.IsSemiUnbounded());
  GKX_CHECK_EQ(circuit.output(), circuit.size() - 1);
  const int32_t m = circuit.num_inputs();
  const int32_t n = circuit.num_logic_gates();
  GKX_CHECK_EQ(static_cast<int32_t>(assignment.size()), m);
  GKX_CHECK_GE(n, 1);

  // ---- Document -----------------------------------------------------------
  TreeBuilder builder("root");
  std::vector<BuildNodeId> v(static_cast<size_t>(m + n));
  std::vector<BuildNodeId> vp(static_cast<size_t>(m + n));
  for (int32_t i = 0; i < m + n; ++i) {
    v[static_cast<size_t>(i)] = builder.AddChild(builder.root(), "n");
    builder.AddLabel(v[static_cast<size_t>(i)], "G");
    vp[static_cast<size_t>(i)] = builder.AddChild(v[static_cast<size_t>(i)], "n");
  }
  for (int32_t i = 0; i < m; ++i) {
    builder.AddLabel(v[static_cast<size_t>(i)],
                     assignment[static_cast<size_t>(i)] ? "T1" : "T0");
  }
  for (int32_t k = 1; k <= n; ++k) {
    const circuits::Gate& gate = circuit.gate(m + k - 1);
    if (gate.kind == GateKind::kAnd) {
      // First feed gets I1<k>, second feed I2<k> (fan-in 1: both).
      builder.AddLabel(v[static_cast<size_t>(gate.inputs.front())], I1Label(k));
      builder.AddLabel(v[static_cast<size_t>(gate.inputs.back())], I2Label(k));
    } else {
      for (int32_t in : gate.inputs) {
        builder.AddLabel(v[static_cast<size_t>(in)], ILabel(k));
      }
    }
    builder.AddLabel(v[static_cast<size_t>(m + k - 1)], OLabel(k));
  }
  builder.AddLabel(v[static_cast<size_t>(m + n - 1)], "R");
  for (int32_t i = 0; i < m + n; ++i) {
    const int32_t from_k = i < m ? 1 : i - m + 1;
    for (int32_t k = from_k; k <= n; ++k) {
      if (circuit.gate(m + k - 1).kind == GateKind::kAnd) {
        // Dummy input lines carry both ∧-labels.
        builder.AddLabel(vp[static_cast<size_t>(i)], I1Label(k));
        builder.AddLabel(vp[static_cast<size_t>(i)], I2Label(k));
      } else {
        builder.AddLabel(vp[static_cast<size_t>(i)], ILabel(k));
      }
      builder.AddLabel(vp[static_cast<size_t>(i)], OLabel(k));
    }
  }

  // ---- Query (negation-free) ---------------------------------------------
  ExprPtr phi = build::LabelTest("T1");
  for (int32_t k = 1; k <= n; ++k) {
    const bool is_and = circuit.gate(m + k - 1).kind == GateKind::kAnd;
    ExprPtr psi;
    if (is_and) {
      // ψk = child::*[T(I1k) and πk] and child::*[T(I2k) and πk] — the πk
      // subtree is duplicated (this is the paper's exponential-in-depth
      // growth; acceptable for SAC1's logarithmic depth).
      ExprPtr pi_first = BuildPi(build::CloneExpr(*phi));
      ExprPtr pi_second = BuildPi(std::move(phi));
      psi = build::And(ChildCondition(I1Label(k), std::move(pi_first)),
                       ChildCondition(I2Label(k), std::move(pi_second)));
    } else {
      psi = ChildCondition(ILabel(k), BuildPi(std::move(phi)));
    }
    std::vector<ExprPtr> parent_preds;
    parent_preds.push_back(std::move(psi));
    ExprPtr parent_path =
        build::StepPath(build::AnyStep(Axis::kParent, std::move(parent_preds)));
    ExprPtr condition =
        build::And(build::LabelTest(OLabel(k)), std::move(parent_path));
    std::vector<ExprPtr> preds;
    preds.push_back(std::move(condition));
    phi = build::StepPath(
        build::AnyStep(Axis::kDescendantOrSelf, std::move(preds)));
  }

  std::vector<ExprPtr> root_preds;
  root_preds.push_back(build::And(build::LabelTest("R"), std::move(phi)));
  std::vector<xpath::Step> steps;
  steps.push_back(build::AnyStep(Axis::kDescendantOrSelf, std::move(root_preds)));

  return CircuitReduction{
      std::move(builder).Build(),
      xpath::Query::Create(build::Path(/*absolute=*/true, std::move(steps)))};
}

}  // namespace gkx::reductions
