// Theorem 4.3 / Figure 5: NL-hardness of PF (predicate-free location paths)
// via an L-reduction from directed-graph reachability.
//
// The paper gives the reduction by example; the figure's exact chain lengths
// are not recoverable from the text, so we use the same ingredients with
// constants we can prove correct (see DESIGN.md §3.4):
//
//   * a spine p1..p(2n) (node p_d at depth d, all labeled `p`); p_j (j <= n)
//     additionally carries the vertex label `u<j>` ("upper port" of vertex
//     j); p_(n+j) is vertex j's "lower port";
//   * each lower port p_(n+i) has exactly one child labeled `c`, under which
//     one unary chain of `x` nodes hangs per edge (i,j), ending in a tip
//     labeled `e` at absolute depth 3n+j+1 (the target is unary-encoded in
//     the tip's depth);
//   * the edge-traversal path is
//       E := child::*^n / child::c / descendant::e / parent::*^(3n+1)
//     mapping the upper port of i to exactly the upper ports of i's
//     out-neighbours (junk branches die at child::c; the tip's depth-j
//     ancestor is always the spine node p_j because j <= n < n+i);
//   * with self-loops added (the paper's trick), reachability becomes
//       /descendant::u<src> / E^n / self::u<dst>  non-empty.
//
// Everything is PF: the 4 axes child/parent/descendant/self, no predicates.

#ifndef GKX_REDUCTIONS_REACH_TO_PF_HPP_
#define GKX_REDUCTIONS_REACH_TO_PF_HPP_

#include "graphs/digraph.hpp"
#include "xml/document.hpp"
#include "xpath/ast.hpp"

namespace gkx::reductions {

struct ReachabilityReduction {
  xml::Document doc;
  xpath::Query query;
};

/// Builds (document, PF query) deciding "dst reachable from src in `graph`".
/// Self-loops are added internally; the input graph is not modified.
/// Vertices are 0-based.
ReachabilityReduction ReachabilityToPf(const graphs::Digraph& graph,
                                       int32_t src, int32_t dst);

/// The document alone (shared across queries about the same graph).
xml::Document ReachabilityDocument(const graphs::Digraph& graph_with_loops);

/// The query alone (for a given vertex count n = graph.num_vertices()).
xpath::Query ReachabilityQuery(int32_t n, int32_t src, int32_t dst);

}  // namespace gkx::reductions

#endif  // GKX_REDUCTIONS_REACH_TO_PF_HPP_
