// Theorem 3.2: the P-hardness reduction from the monotone circuit value
// problem to Core XPath evaluation, implemented exactly as in the paper.
//
// Document (depth 2, multi-label nodes per Remark 3.1): a root v0 with
// children v1..v(M+N), each vi having one child v'i. Labels:
//   * vi: G; input vi (i<=M): T1/T0 per the assignment; vi: I<k> iff gate
//     G(M+k) reads gate Gi; v(M+k): O<k>; v(M+N): R.
//   * v'i (i<=M): all of I1..IN, O1..ON; v'(M+j): { I<k>, O<k> : j <= k <= N }.
// Query (linear in the circuit size; T(l) emitted as the condition self::l):
//   /descendant-or-self::*[T(R) and ϕN]
//   ϕk = descendant-or-self::*[T(Ok) and parent::*[ψk]]
//   ψk = not(child::*[T(Ik) and not(πk)])        for ∧-gates
//   ψk = child::*[T(Ik) and πk]                  for ∨-gates
//   πk = ancestor-or-self::*[T(G) and ϕ(k-1)],   ϕ0 = T(1)
//
// Corollary 3.3 mode replaces ancestor-or-self::* in πk by
// descendant-or-self::*/parent::*, so only the axes child, parent and
// descendant-or-self occur.
//
// Guarantee (verified by the property tests): the query result is non-empty
// iff the circuit evaluates to true.

#ifndef GKX_REDUCTIONS_CIRCUIT_TO_CORE_XPATH_HPP_
#define GKX_REDUCTIONS_CIRCUIT_TO_CORE_XPATH_HPP_

#include <vector>

#include "circuits/circuit.hpp"
#include "xml/document.hpp"
#include "xpath/ast.hpp"

namespace gkx::reductions {

struct CircuitReduction {
  xml::Document doc;
  xpath::Query query;
};

struct CircuitReductionOptions {
  /// Use the Corollary 3.3 axis set {child, parent, descendant-or-self}.
  bool corollary33_axes = false;
};

/// Builds (document, Core XPath query) for a monotone circuit and input
/// assignment. The circuit must Validate(); the output gate must be the last
/// gate (paper convention G(M+N)).
CircuitReduction CircuitToCoreXPath(const circuits::Circuit& circuit,
                                    const std::vector<bool>& assignment,
                                    const CircuitReductionOptions& options = {});

}  // namespace gkx::reductions

#endif  // GKX_REDUCTIONS_CIRCUIT_TO_CORE_XPATH_HPP_
