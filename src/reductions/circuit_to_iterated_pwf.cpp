#include "reductions/circuit_to_iterated_pwf.hpp"

#include <string>
#include <utility>

#include "xml/builder.hpp"
#include "xpath/build.hpp"

namespace gkx::reductions {

using circuits::Circuit;
using circuits::GateKind;
using xml::BuildNodeId;
using xml::TreeBuilder;
using xpath::Axis;
using xpath::BinaryOp;
using xpath::ExprPtr;
namespace build = xpath::build;

namespace {

std::string ILabel(int32_t k) { return "I" + std::to_string(k); }
std::string OLabel(int32_t k) { return "O" + std::to_string(k); }

/// π'k = ancestor-or-self::*[(T(G) and ϕ'(k-1)) or T(A)], with an extra
/// predicate appended to the (single) step: [last() = 1] or [last() > 1].
ExprPtr BuildPiWithLastTest(ExprPtr phi_prev, bool last_equals_one) {
  ExprPtr condition =
      build::Or(build::And(build::LabelTest("G"), std::move(phi_prev)),
                build::LabelTest("A"));
  ExprPtr last_test = build::Binary(
      last_equals_one ? BinaryOp::kEq : BinaryOp::kGt, build::Last(),
      build::Number(1));
  std::vector<ExprPtr> preds;
  preds.push_back(std::move(condition));
  preds.push_back(std::move(last_test));  // iterated predicate
  return build::StepPath(build::AnyStep(Axis::kAncestorOrSelf, std::move(preds)));
}

}  // namespace

CircuitReduction CircuitToIteratedPwf(const Circuit& circuit,
                                      const std::vector<bool>& assignment) {
  GKX_CHECK(circuit.Validate().ok());
  GKX_CHECK_EQ(circuit.output(), circuit.size() - 1);
  const int32_t m = circuit.num_inputs();
  const int32_t n = circuit.num_logic_gates();
  GKX_CHECK_EQ(static_cast<int32_t>(assignment.size()), m);
  GKX_CHECK_GE(n, 1);

  // ---- Document D' --------------------------------------------------------
  TreeBuilder builder("root");
  builder.AddLabel(builder.root(), "A");
  std::vector<BuildNodeId> v(static_cast<size_t>(m + n));
  std::vector<BuildNodeId> vp(static_cast<size_t>(m + n));
  for (int32_t i = 0; i < m + n; ++i) {
    v[static_cast<size_t>(i)] = builder.AddChild(builder.root(), "n");
    builder.AddLabel(v[static_cast<size_t>(i)], "G");
    vp[static_cast<size_t>(i)] = builder.AddChild(v[static_cast<size_t>(i)], "n");
  }
  for (int32_t i = 0; i < m; ++i) {
    builder.AddLabel(v[static_cast<size_t>(i)],
                     assignment[static_cast<size_t>(i)] ? "T1" : "T0");
  }
  for (int32_t k = 1; k <= n; ++k) {
    const circuits::Gate& gate = circuit.gate(m + k - 1);
    for (int32_t in : gate.inputs) {
      builder.AddLabel(v[static_cast<size_t>(in)], ILabel(k));
    }
    builder.AddLabel(v[static_cast<size_t>(m + k - 1)], OLabel(k));
  }
  builder.AddLabel(v[static_cast<size_t>(m + n - 1)], "R");
  for (int32_t i = 0; i < m + n; ++i) {
    const int32_t from_k = i < m ? 1 : i - m + 1;
    for (int32_t k = from_k; k <= n; ++k) {
      builder.AddLabel(vp[static_cast<size_t>(i)], ILabel(k));
      builder.AddLabel(vp[static_cast<size_t>(i)], OLabel(k));
    }
  }
  // The W children: one per vi (right-most), plus w0 under the root.
  for (int32_t i = 0; i < m + n; ++i) {
    BuildNodeId w = builder.AddChild(v[static_cast<size_t>(i)], "n");
    builder.AddLabel(w, "W");
  }
  BuildNodeId w0 = builder.AddChild(builder.root(), "n");
  builder.AddLabel(w0, "W");

  // ---- Query (negation-free, predicate chains of length <= 2) -------------
  ExprPtr phi = build::LabelTest("T1");
  for (int32_t k = 1; k <= n; ++k) {
    const bool is_and = circuit.gate(m + k - 1).kind == GateKind::kAnd;
    ExprPtr psi;
    if (is_and) {
      // ψ'k = child::*[(T(Ik) and π'k[last()=1]) or T(W)][last()=1].
      ExprPtr pi = BuildPiWithLastTest(std::move(phi), /*last_equals_one=*/true);
      ExprPtr first =
          build::Or(build::And(build::LabelTest(ILabel(k)), std::move(pi)),
                    build::LabelTest("W"));
      ExprPtr second = build::Binary(BinaryOp::kEq, build::Last(), build::Number(1));
      std::vector<ExprPtr> preds;
      preds.push_back(std::move(first));
      preds.push_back(std::move(second));
      psi = build::StepPath(build::AnyStep(Axis::kChild, std::move(preds)));
    } else {
      // ψ'k = child::*[T(Ik) and π'k[last()>1]].
      ExprPtr pi = BuildPiWithLastTest(std::move(phi), /*last_equals_one=*/false);
      ExprPtr condition = build::And(build::LabelTest(ILabel(k)), std::move(pi));
      std::vector<ExprPtr> preds;
      preds.push_back(std::move(condition));
      psi = build::StepPath(build::AnyStep(Axis::kChild, std::move(preds)));
    }
    std::vector<ExprPtr> parent_preds;
    parent_preds.push_back(std::move(psi));
    ExprPtr parent_path =
        build::StepPath(build::AnyStep(Axis::kParent, std::move(parent_preds)));
    ExprPtr condition =
        build::And(build::LabelTest(OLabel(k)), std::move(parent_path));
    std::vector<ExprPtr> preds;
    preds.push_back(std::move(condition));
    phi = build::StepPath(
        build::AnyStep(Axis::kDescendantOrSelf, std::move(preds)));
  }

  std::vector<ExprPtr> root_preds;
  root_preds.push_back(build::And(build::LabelTest("R"), std::move(phi)));
  std::vector<xpath::Step> steps;
  steps.push_back(build::AnyStep(Axis::kDescendantOrSelf, std::move(root_preds)));

  return CircuitReduction{
      std::move(builder).Build(),
      xpath::Query::Create(build::Path(/*absolute=*/true, std::move(steps)))};
}

}  // namespace gkx::reductions
