// Theorem 5.7 / Corollary 5.8: pWF plus iterated predicates is P-complete.
// Negation is *encoded* with predicate sequences of length 2 and last():
//
// Document D' = the Theorem 3.2 document extended with one extra child wi
// (labeled W, right-most) under every vi including the root v0, and label A
// on v0. Query:
//   /descendant-or-self::*[T(R) and ϕ'N]
//   ϕ'k = descendant-or-self::*[T(Ok) and parent::*[ψ'k]]
//   ψ'k = child::*[(T(Ik) and π'k[last()=1]) or T(W)][last()=1]   (∧-gates)
//   ψ'k = child::*[T(Ik) and π'k[last()>1]]                       (∨-gates)
//   π'k = ancestor-or-self::*[(T(G) and ϕ'(k-1)) or T(A)]
//   ϕ'0 = T(1)
// π'k always matches the A-labeled root plus — exactly when the paper's πk
// would match — one more node, so [last()=1] tests "πk empty" (i.e. not(πk))
// and [last()>1] tests "πk non-empty". The query is negation-free, uses only
// predicate sequences of length <= 2, and selects a non-empty result iff the
// circuit accepts.

#ifndef GKX_REDUCTIONS_CIRCUIT_TO_ITERATED_PWF_HPP_
#define GKX_REDUCTIONS_CIRCUIT_TO_ITERATED_PWF_HPP_

#include <vector>

#include "circuits/circuit.hpp"
#include "reductions/circuit_to_core_xpath.hpp"

namespace gkx::reductions {

/// Builds the Theorem 5.7 instance for a monotone circuit + assignment.
CircuitReduction CircuitToIteratedPwf(const circuits::Circuit& circuit,
                                      const std::vector<bool>& assignment);

}  // namespace gkx::reductions

#endif  // GKX_REDUCTIONS_CIRCUIT_TO_ITERATED_PWF_HPP_
