#include "reductions/reach_to_pf.hpp"

#include <string>
#include <utility>
#include <vector>

#include "xml/builder.hpp"
#include "xpath/build.hpp"

namespace gkx::reductions {

using graphs::Digraph;
using xml::BuildNodeId;
using xml::TreeBuilder;
using xpath::Axis;
using xpath::NodeTest;
namespace build = xpath::build;

namespace {

std::string VertexLabel(int32_t v) { return "u" + std::to_string(v + 1); }

}  // namespace

xml::Document ReachabilityDocument(const Digraph& graph_with_loops) {
  const int32_t n = graph_with_loops.num_vertices();
  TreeBuilder builder("root");

  // Spine p1..p(2n); p_d at depth d.
  std::vector<BuildNodeId> spine(static_cast<size_t>(2 * n));
  BuildNodeId current = builder.root();
  for (int32_t d = 1; d <= 2 * n; ++d) {
    current = builder.AddChild(current, "p");
    spine[static_cast<size_t>(d - 1)] = current;
    if (d <= n) builder.AddLabel(current, VertexLabel(d - 1));
  }

  // Adjacency bundles: lower port p_(n+i) gets one `c` child; per edge (i,j)
  // a chain of `x` nodes with an `e` tip at absolute depth 3n+j+1.
  for (int32_t i = 1; i <= n; ++i) {
    BuildNodeId c = builder.AddChild(spine[static_cast<size_t>(n + i - 1)], "c");
    // depth(c) = n + i + 1.
    for (int32_t j0 : graph_with_loops.OutEdges(i - 1)) {
      const int32_t j = j0 + 1;
      const int32_t tip_depth = 3 * n + j + 1;
      const int32_t chain_length = tip_depth - (n + i + 1);
      GKX_CHECK_GE(chain_length, 1);
      BuildNodeId node = c;
      for (int32_t step = 1; step < chain_length; ++step) {
        node = builder.AddChild(node, "x");
      }
      builder.AddChild(node, "e");
    }
  }
  return std::move(builder).Build();
}

xpath::Query ReachabilityQuery(int32_t n, int32_t src, int32_t dst) {
  GKX_CHECK(src >= 0 && src < n);
  GKX_CHECK(dst >= 0 && dst < n);
  std::vector<xpath::Step> steps;
  steps.push_back(build::NamedStep(Axis::kDescendant, VertexLabel(src)));
  for (int32_t hop = 0; hop < n; ++hop) {
    // E := child::*^n / child::c / descendant::e / parent::*^(3n+1).
    for (int32_t i = 0; i < n; ++i) steps.push_back(build::AnyStep(Axis::kChild));
    steps.push_back(build::NamedStep(Axis::kChild, "c"));
    steps.push_back(build::NamedStep(Axis::kDescendant, "e"));
    for (int32_t i = 0; i < 3 * n + 1; ++i) {
      steps.push_back(build::AnyStep(Axis::kParent));
    }
  }
  steps.push_back(build::NamedStep(Axis::kSelf, VertexLabel(dst)));
  return xpath::Query::Create(build::Path(/*absolute=*/true, std::move(steps)));
}

ReachabilityReduction ReachabilityToPf(const Digraph& graph, int32_t src,
                                       int32_t dst) {
  Digraph with_loops = graph;
  with_loops.AddSelfLoops();
  return ReachabilityReduction{
      ReachabilityDocument(with_loops),
      ReachabilityQuery(graph.num_vertices(), src, dst)};
}

}  // namespace gkx::reductions
