// Monotone boolean circuits (§3) and their semi-unbounded (SAC1) restriction
// (§2.1): AND/OR gates over input gates, stored in the exact form the
// Theorem 3.2 reduction consumes — gates G1..G(M+N) numbered so that no gate
// depends on a later gate, inputs first, output last by convention.

#ifndef GKX_CIRCUITS_CIRCUIT_HPP_
#define GKX_CIRCUITS_CIRCUIT_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.hpp"

namespace gkx::circuits {

enum class GateKind { kInput, kAnd, kOr };

std::string_view GateKindName(GateKind kind);

struct Gate {
  GateKind kind = GateKind::kInput;
  /// Indices of feeding gates; empty for inputs. Unbounded fan-in (>= 1).
  std::vector<int32_t> inputs;
};

/// A monotone circuit in topological gate order. Build with AddInput /
/// AddAnd / AddOr (which enforce the ordering), then Validate().
class Circuit {
 public:
  /// Appends an input gate; all inputs must be added before any logic gate.
  int32_t AddInput();

  /// Appends an AND/OR gate fed by existing gates (indices < current size).
  int32_t AddAnd(std::vector<int32_t> inputs);
  int32_t AddOr(std::vector<int32_t> inputs);

  /// Marks the output gate (defaults to the last gate).
  void SetOutput(int32_t gate);

  int32_t size() const { return static_cast<int32_t>(gates_.size()); }
  int32_t num_inputs() const { return num_inputs_; }
  /// Non-input gate count N (paper notation: gates are G1..G(M+N)).
  int32_t num_logic_gates() const { return size() - num_inputs_; }
  int32_t output() const { return output_ < 0 ? size() - 1 : output_; }

  const Gate& gate(int32_t index) const {
    GKX_CHECK(index >= 0 && index < size());
    return gates_[static_cast<size_t>(index)];
  }

  /// Structural checks: inputs before logic gates, topological feed order,
  /// fan-in >= 1, output in range.
  Status Validate() const;

  /// True if every AND gate has fan-in <= 2 (semi-unbounded / SAC circuits).
  bool IsSemiUnbounded() const;

  /// Longest path from any input to the output (inputs have depth 0).
  int32_t Depth() const;

  /// Evaluates the output for an input assignment (size == num_inputs()).
  bool Evaluate(const std::vector<bool>& assignment) const;

  /// Values of all gates under an assignment.
  std::vector<bool> EvaluateAll(const std::vector<bool>& assignment) const;

  /// Graphviz rendering (for documentation/examples).
  std::string ToDot() const;

 private:
  std::vector<Gate> gates_;
  int32_t num_inputs_ = 0;
  int32_t output_ = -1;
};

}  // namespace gkx::circuits

#endif  // GKX_CIRCUITS_CIRCUIT_HPP_
