// Circuit workload generators: the paper's Figure 2 carry-bit adder circuit
// (generalized to b bits), random monotone circuits for the Theorem 3.2
// sweeps, and random semi-unbounded log-depth (SAC1-shaped) circuits for
// Theorem 4.2.

#ifndef GKX_CIRCUITS_GENERATORS_HPP_
#define GKX_CIRCUITS_GENERATORS_HPP_

#include "base/rng.hpp"
#include "circuits/circuit.hpp"

namespace gkx::circuits {

/// The carry-bit circuit of Figure 2, generalized: inputs a0..a(b-1),
/// b0..b(b-1) (in the gate order a(b-1), b(b-1), ..., a0, b0 matching the
/// figure for b=2); output = carry of the b-bit addition a + b.
/// For bits=2 this is exactly the paper's 9-gate example:
///   c0 = a0 ∧ b0,  c1 = (a1∧b1) ∨ (a1∧c0) ∨ (b1∧c0).
Circuit CarryCircuit(int32_t bits);

/// Expected carry bit of a + b for CarryCircuit's input convention —
/// assignment[2k] = a_(bits-1-k)... i.e. pass the assignment you gave
/// Evaluate(); used to cross-check the circuit itself.
bool CarryGroundTruth(int32_t bits, const std::vector<bool>& assignment);

struct RandomMonotoneOptions {
  int32_t num_inputs = 4;
  int32_t num_gates = 8;   // logic gates (N)
  int32_t max_fanin = 3;   // >= 1
  double and_probability = 0.5;
};

/// Random monotone circuit in topological order; every gate feeds from
/// uniformly random earlier gates (biased toward recent gates so deep
/// circuits arise); output = last gate.
Circuit RandomMonotone(Rng* rng, const RandomMonotoneOptions& options = {});

struct RandomSacOptions {
  int32_t num_inputs = 4;
  int32_t layers = 4;          // alternating OR (unbounded) / AND (fan-in 2)
  int32_t width = 4;           // gates per layer
  int32_t max_or_fanin = 4;
};

/// Random semi-unbounded layered circuit (AND fan-in 2, OR unbounded) —
/// the SAC1 shape of Theorem 4.2 for small depths.
Circuit RandomSac(Rng* rng, const RandomSacOptions& options = {});

/// All 2^n assignments of n bits (n <= 20), in lexicographic order.
std::vector<std::vector<bool>> AllAssignments(int32_t n);

}  // namespace gkx::circuits

#endif  // GKX_CIRCUITS_GENERATORS_HPP_
