#include "circuits/circuit.hpp"

#include <algorithm>

namespace gkx::circuits {

std::string_view GateKindName(GateKind kind) {
  switch (kind) {
    case GateKind::kInput: return "input";
    case GateKind::kAnd: return "and";
    case GateKind::kOr: return "or";
  }
  GKX_CHECK(false);
  return {};
}

int32_t Circuit::AddInput() {
  GKX_CHECK_EQ(num_inputs_, size());  // inputs must precede logic gates
  gates_.push_back(Gate{GateKind::kInput, {}});
  return num_inputs_++;
}

int32_t Circuit::AddAnd(std::vector<int32_t> inputs) {
  GKX_CHECK(!inputs.empty());
  for (int32_t in : inputs) GKX_CHECK(in >= 0 && in < size());
  gates_.push_back(Gate{GateKind::kAnd, std::move(inputs)});
  return size() - 1;
}

int32_t Circuit::AddOr(std::vector<int32_t> inputs) {
  GKX_CHECK(!inputs.empty());
  for (int32_t in : inputs) GKX_CHECK(in >= 0 && in < size());
  gates_.push_back(Gate{GateKind::kOr, std::move(inputs)});
  return size() - 1;
}

void Circuit::SetOutput(int32_t gate) {
  GKX_CHECK(gate >= 0 && gate < size());
  output_ = gate;
}

Status Circuit::Validate() const {
  if (size() == 0) return InvalidArgumentError("circuit has no gates");
  if (num_inputs_ == 0) return InvalidArgumentError("circuit has no inputs");
  if (output() < 0 || output() >= size()) {
    return InvalidArgumentError("output gate out of range");
  }
  for (int32_t i = 0; i < size(); ++i) {
    const Gate& g = gate(i);
    const bool is_input = i < num_inputs_;
    if (is_input != (g.kind == GateKind::kInput)) {
      return InvalidArgumentError("inputs must be exactly the first M gates");
    }
    if (g.kind == GateKind::kInput) {
      if (!g.inputs.empty()) {
        return InvalidArgumentError("input gate with feeds");
      }
      continue;
    }
    if (g.inputs.empty()) return InvalidArgumentError("logic gate with fan-in 0");
    for (int32_t in : g.inputs) {
      if (in < 0 || in >= i) {
        return InvalidArgumentError(
            "gate " + std::to_string(i) + " feeds from gate " +
            std::to_string(in) + " violating the topological order");
      }
    }
  }
  return Status::Ok();
}

bool Circuit::IsSemiUnbounded() const {
  for (const Gate& g : gates_) {
    if (g.kind == GateKind::kAnd && g.inputs.size() > 2) return false;
  }
  return true;
}

int32_t Circuit::Depth() const {
  std::vector<int32_t> depth(static_cast<size_t>(size()), 0);
  for (int32_t i = 0; i < size(); ++i) {
    for (int32_t in : gate(i).inputs) {
      depth[static_cast<size_t>(i)] =
          std::max(depth[static_cast<size_t>(i)], depth[static_cast<size_t>(in)] + 1);
    }
  }
  return depth[static_cast<size_t>(output())];
}

std::vector<bool> Circuit::EvaluateAll(const std::vector<bool>& assignment) const {
  GKX_CHECK_EQ(static_cast<int32_t>(assignment.size()), num_inputs_);
  std::vector<bool> value(static_cast<size_t>(size()), false);
  for (int32_t i = 0; i < size(); ++i) {
    const Gate& g = gate(i);
    switch (g.kind) {
      case GateKind::kInput:
        value[static_cast<size_t>(i)] = assignment[static_cast<size_t>(i)];
        break;
      case GateKind::kAnd: {
        bool v = true;
        for (int32_t in : g.inputs) v = v && value[static_cast<size_t>(in)];
        value[static_cast<size_t>(i)] = v;
        break;
      }
      case GateKind::kOr: {
        bool v = false;
        for (int32_t in : g.inputs) v = v || value[static_cast<size_t>(in)];
        value[static_cast<size_t>(i)] = v;
        break;
      }
    }
  }
  return value;
}

bool Circuit::Evaluate(const std::vector<bool>& assignment) const {
  return EvaluateAll(assignment)[static_cast<size_t>(output())];
}

std::string Circuit::ToDot() const {
  std::string out = "digraph circuit {\n  rankdir=BT;\n";
  for (int32_t i = 0; i < size(); ++i) {
    const Gate& g = gate(i);
    out += "  g" + std::to_string(i) + " [label=\"G" + std::to_string(i + 1);
    if (g.kind == GateKind::kAnd) out += " AND";
    if (g.kind == GateKind::kOr) out += " OR";
    out += "\"";
    if (i == output()) out += ", shape=doublecircle";
    out += "];\n";
    for (int32_t in : g.inputs) {
      out += "  g" + std::to_string(in) + " -> g" + std::to_string(i) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace gkx::circuits
