#include "circuits/generators.hpp"

#include <algorithm>

namespace gkx::circuits {

Circuit CarryCircuit(int32_t bits) {
  GKX_CHECK_GE(bits, 1);
  Circuit circuit;
  // Figure 2 input order for b=2: G1=a1, G2=b1, G3=a0, G4=b0 — i.e. most
  // significant digit first. a_k is input 2*(bits-1-k), b_k is that +1.
  std::vector<int32_t> a(static_cast<size_t>(bits));
  std::vector<int32_t> b(static_cast<size_t>(bits));
  for (int32_t k = bits - 1; k >= 0; --k) {
    a[static_cast<size_t>(k)] = circuit.AddInput();
    b[static_cast<size_t>(k)] = circuit.AddInput();
  }
  // c0 = a0 ∧ b0; ck = (ak∧bk) ∨ (ak∧c(k-1)) ∨ (bk∧c(k-1)).
  int32_t carry = circuit.AddAnd({a[0], b[0]});
  for (int32_t k = 1; k < bits; ++k) {
    int32_t ab = circuit.AddAnd({a[static_cast<size_t>(k)], b[static_cast<size_t>(k)]});
    int32_t ac = circuit.AddAnd({a[static_cast<size_t>(k)], carry});
    int32_t bc = circuit.AddAnd({b[static_cast<size_t>(k)], carry});
    carry = circuit.AddOr({ab, ac, bc});
  }
  circuit.SetOutput(carry);
  GKX_CHECK(circuit.Validate().ok());
  return circuit;
}

bool CarryGroundTruth(int32_t bits, const std::vector<bool>& assignment) {
  GKX_CHECK_EQ(static_cast<int32_t>(assignment.size()), 2 * bits);
  // Inputs were added most-significant-first: assignment[2i] = a_(bits-1-i).
  uint64_t a = 0;
  uint64_t b = 0;
  for (int32_t i = 0; i < bits; ++i) {
    const int32_t k = bits - 1 - i;  // digit index
    if (assignment[static_cast<size_t>(2 * i)]) a |= uint64_t{1} << k;
    if (assignment[static_cast<size_t>(2 * i + 1)]) b |= uint64_t{1} << k;
  }
  return (a + b) >> bits != 0;
}

Circuit RandomMonotone(Rng* rng, const RandomMonotoneOptions& options) {
  GKX_CHECK_GE(options.num_inputs, 1);
  GKX_CHECK_GE(options.num_gates, 1);
  GKX_CHECK_GE(options.max_fanin, 1);
  Circuit circuit;
  for (int32_t i = 0; i < options.num_inputs; ++i) circuit.AddInput();
  for (int32_t g = 0; g < options.num_gates; ++g) {
    const int32_t pool = circuit.size();
    int64_t fanin = rng->UniformInt(1, options.max_fanin);
    std::vector<int32_t> inputs;
    for (int64_t i = 0; i < fanin; ++i) {
      // Bias toward recent gates: pick from the last half with prob 1/2.
      int32_t in;
      if (pool > 2 && rng->Bernoulli(0.5)) {
        in = static_cast<int32_t>(rng->UniformInt(pool / 2, pool - 1));
      } else {
        in = static_cast<int32_t>(rng->UniformInt(0, pool - 1));
      }
      inputs.push_back(in);
    }
    std::sort(inputs.begin(), inputs.end());
    inputs.erase(std::unique(inputs.begin(), inputs.end()), inputs.end());
    if (rng->Bernoulli(options.and_probability)) {
      circuit.AddAnd(std::move(inputs));
    } else {
      circuit.AddOr(std::move(inputs));
    }
  }
  GKX_CHECK(circuit.Validate().ok());
  return circuit;
}

Circuit RandomSac(Rng* rng, const RandomSacOptions& options) {
  GKX_CHECK_GE(options.num_inputs, 1);
  GKX_CHECK_GE(options.layers, 1);
  GKX_CHECK_GE(options.width, 1);
  Circuit circuit;
  for (int32_t i = 0; i < options.num_inputs; ++i) circuit.AddInput();
  std::vector<int32_t> previous;
  for (int32_t i = 0; i < options.num_inputs; ++i) previous.push_back(i);

  for (int32_t layer = 0; layer < options.layers; ++layer) {
    const bool and_layer = layer % 2 == 0;
    std::vector<int32_t> current;
    for (int32_t w = 0; w < options.width; ++w) {
      if (and_layer) {
        // Semi-unbounded: AND fan-in exactly 2.
        int32_t lhs = rng->Pick(previous);
        int32_t rhs = rng->Pick(previous);
        current.push_back(lhs == rhs ? circuit.AddAnd({lhs})
                                     : circuit.AddAnd({lhs, rhs}));
      } else {
        int64_t fanin = rng->UniformInt(1, options.max_or_fanin);
        std::vector<int32_t> inputs;
        for (int64_t i = 0; i < fanin; ++i) inputs.push_back(rng->Pick(previous));
        std::sort(inputs.begin(), inputs.end());
        inputs.erase(std::unique(inputs.begin(), inputs.end()), inputs.end());
        current.push_back(circuit.AddOr(std::move(inputs)));
      }
    }
    previous = std::move(current);
  }
  circuit.SetOutput(previous.back());
  GKX_CHECK(circuit.Validate().ok());
  GKX_CHECK(circuit.IsSemiUnbounded());
  return circuit;
}

std::vector<std::vector<bool>> AllAssignments(int32_t n) {
  GKX_CHECK(n >= 0 && n <= 20);
  std::vector<std::vector<bool>> out;
  out.reserve(size_t{1} << n);
  for (uint32_t mask = 0; mask < (uint32_t{1} << n); ++mask) {
    std::vector<bool> assignment(static_cast<size_t>(n));
    for (int32_t i = 0; i < n; ++i) {
      assignment[static_cast<size_t>(i)] = (mask >> i) & 1;
    }
    out.push_back(std::move(assignment));
  }
  return out;
}

}  // namespace gkx::circuits
