file(REMOVE_RECURSE
  "CMakeFiles/plan_cache_property_test.dir/tests/plan_cache_property_test.cpp.o"
  "CMakeFiles/plan_cache_property_test.dir/tests/plan_cache_property_test.cpp.o.d"
  "plan_cache_property_test"
  "plan_cache_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_cache_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
