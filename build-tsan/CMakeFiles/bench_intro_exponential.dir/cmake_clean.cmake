file(REMOVE_RECURSE
  "CMakeFiles/bench_intro_exponential.dir/bench/bench_intro_exponential.cpp.o"
  "CMakeFiles/bench_intro_exponential.dir/bench/bench_intro_exponential.cpp.o.d"
  "bench_intro_exponential"
  "bench_intro_exponential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intro_exponential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
