# Empty dependencies file for bench_intro_exponential.
# This may be replaced when dependencies are built.
