# Empty dependencies file for store_churn_test.
# This may be replaced when dependencies are built.
