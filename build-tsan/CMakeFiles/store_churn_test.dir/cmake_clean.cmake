file(REMOVE_RECURSE
  "CMakeFiles/store_churn_test.dir/tests/store_churn_test.cpp.o"
  "CMakeFiles/store_churn_test.dir/tests/store_churn_test.cpp.o.d"
  "store_churn_test"
  "store_churn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_churn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
