file(REMOVE_RECURSE
  "CMakeFiles/example_fragment_advisor.dir/examples/fragment_advisor.cpp.o"
  "CMakeFiles/example_fragment_advisor.dir/examples/fragment_advisor.cpp.o.d"
  "example_fragment_advisor"
  "example_fragment_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fragment_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
