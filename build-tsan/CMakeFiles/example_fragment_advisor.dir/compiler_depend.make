# Empty compiler generated dependencies file for example_fragment_advisor.
# This may be replaced when dependencies are built.
