file(REMOVE_RECURSE
  "CMakeFiles/auction_test.dir/tests/auction_test.cpp.o"
  "CMakeFiles/auction_test.dir/tests/auction_test.cpp.o.d"
  "auction_test"
  "auction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
