file(REMOVE_RECURSE
  "CMakeFiles/graphs_test.dir/tests/graphs_test.cpp.o"
  "CMakeFiles/graphs_test.dir/tests/graphs_test.cpp.o.d"
  "graphs_test"
  "graphs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
