# Empty dependencies file for graphs_test.
# This may be replaced when dependencies are built.
