file(REMOVE_RECURSE
  "CMakeFiles/conformance_test.dir/tests/conformance_test.cpp.o"
  "CMakeFiles/conformance_test.dir/tests/conformance_test.cpp.o.d"
  "conformance_test"
  "conformance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
