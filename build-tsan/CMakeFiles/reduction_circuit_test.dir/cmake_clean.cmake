file(REMOVE_RECURSE
  "CMakeFiles/reduction_circuit_test.dir/tests/reduction_circuit_test.cpp.o"
  "CMakeFiles/reduction_circuit_test.dir/tests/reduction_circuit_test.cpp.o.d"
  "reduction_circuit_test"
  "reduction_circuit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduction_circuit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
