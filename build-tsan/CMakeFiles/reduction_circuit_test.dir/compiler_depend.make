# Empty compiler generated dependencies file for reduction_circuit_test.
# This may be replaced when dependencies are built.
