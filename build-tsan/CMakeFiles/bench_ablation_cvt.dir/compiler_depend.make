# Empty compiler generated dependencies file for bench_ablation_cvt.
# This may be replaced when dependencies are built.
