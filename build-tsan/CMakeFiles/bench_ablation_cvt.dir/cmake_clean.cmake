file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cvt.dir/bench/bench_ablation_cvt.cpp.o"
  "CMakeFiles/bench_ablation_cvt.dir/bench/bench_ablation_cvt.cpp.o.d"
  "bench_ablation_cvt"
  "bench_ablation_cvt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cvt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
