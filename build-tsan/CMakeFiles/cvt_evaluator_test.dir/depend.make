# Empty dependencies file for cvt_evaluator_test.
# This may be replaced when dependencies are built.
