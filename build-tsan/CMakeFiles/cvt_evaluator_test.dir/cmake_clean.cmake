file(REMOVE_RECURSE
  "CMakeFiles/cvt_evaluator_test.dir/tests/cvt_evaluator_test.cpp.o"
  "CMakeFiles/cvt_evaluator_test.dir/tests/cvt_evaluator_test.cpp.o.d"
  "cvt_evaluator_test"
  "cvt_evaluator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvt_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
