file(REMOVE_RECURSE
  "CMakeFiles/evaluator_semantics_test.dir/tests/evaluator_semantics_test.cpp.o"
  "CMakeFiles/evaluator_semantics_test.dir/tests/evaluator_semantics_test.cpp.o.d"
  "evaluator_semantics_test"
  "evaluator_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaluator_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
