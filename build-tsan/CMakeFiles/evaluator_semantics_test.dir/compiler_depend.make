# Empty compiler generated dependencies file for evaluator_semantics_test.
# This may be replaced when dependencies are built.
