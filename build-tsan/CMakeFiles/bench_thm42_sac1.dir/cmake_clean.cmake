file(REMOVE_RECURSE
  "CMakeFiles/bench_thm42_sac1.dir/bench/bench_thm42_sac1.cpp.o"
  "CMakeFiles/bench_thm42_sac1.dir/bench/bench_thm42_sac1.cpp.o.d"
  "bench_thm42_sac1"
  "bench_thm42_sac1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm42_sac1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
