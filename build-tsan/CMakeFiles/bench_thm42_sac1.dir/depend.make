# Empty dependencies file for bench_thm42_sac1.
# This may be replaced when dependencies are built.
