file(REMOVE_RECURSE
  "CMakeFiles/string_functions_test.dir/tests/string_functions_test.cpp.o"
  "CMakeFiles/string_functions_test.dir/tests/string_functions_test.cpp.o.d"
  "string_functions_test"
  "string_functions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_functions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
