# Empty compiler generated dependencies file for string_functions_test.
# This may be replaced when dependencies are built.
