file(REMOVE_RECURSE
  "CMakeFiles/xpath_fragment_test.dir/tests/xpath_fragment_test.cpp.o"
  "CMakeFiles/xpath_fragment_test.dir/tests/xpath_fragment_test.cpp.o.d"
  "xpath_fragment_test"
  "xpath_fragment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpath_fragment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
