# Empty dependencies file for xpath_fragment_test.
# This may be replaced when dependencies are built.
