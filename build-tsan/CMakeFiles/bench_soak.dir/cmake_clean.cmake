file(REMOVE_RECURSE
  "CMakeFiles/bench_soak.dir/bench/bench_soak.cpp.o"
  "CMakeFiles/bench_soak.dir/bench/bench_soak.cpp.o.d"
  "bench_soak"
  "bench_soak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_soak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
