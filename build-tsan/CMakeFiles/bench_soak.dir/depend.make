# Empty dependencies file for bench_soak.
# This may be replaced when dependencies are built.
