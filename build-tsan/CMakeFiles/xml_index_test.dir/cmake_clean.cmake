file(REMOVE_RECURSE
  "CMakeFiles/xml_index_test.dir/tests/xml_index_test.cpp.o"
  "CMakeFiles/xml_index_test.dir/tests/xml_index_test.cpp.o.d"
  "xml_index_test"
  "xml_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
