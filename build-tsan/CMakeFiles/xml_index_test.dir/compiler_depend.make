# Empty compiler generated dependencies file for xml_index_test.
# This may be replaced when dependencies are built.
