file(REMOVE_RECURSE
  "CMakeFiles/reduction_sac_test.dir/tests/reduction_sac_test.cpp.o"
  "CMakeFiles/reduction_sac_test.dir/tests/reduction_sac_test.cpp.o.d"
  "reduction_sac_test"
  "reduction_sac_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduction_sac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
