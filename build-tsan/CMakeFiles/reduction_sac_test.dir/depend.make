# Empty dependencies file for reduction_sac_test.
# This may be replaced when dependencies are built.
