# Empty compiler generated dependencies file for bench_thm57_iterated.
# This may be replaced when dependencies are built.
