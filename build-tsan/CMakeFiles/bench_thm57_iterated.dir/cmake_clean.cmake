file(REMOVE_RECURSE
  "CMakeFiles/bench_thm57_iterated.dir/bench/bench_thm57_iterated.cpp.o"
  "CMakeFiles/bench_thm57_iterated.dir/bench/bench_thm57_iterated.cpp.o.d"
  "bench_thm57_iterated"
  "bench_thm57_iterated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm57_iterated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
