# Empty dependencies file for bench_fig5_reachability.
# This may be replaced when dependencies are built.
