file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_reachability.dir/bench/bench_fig5_reachability.cpp.o"
  "CMakeFiles/bench_fig5_reachability.dir/bench/bench_fig5_reachability.cpp.o.d"
  "bench_fig5_reachability"
  "bench_fig5_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
