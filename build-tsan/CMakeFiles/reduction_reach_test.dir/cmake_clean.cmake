file(REMOVE_RECURSE
  "CMakeFiles/reduction_reach_test.dir/tests/reduction_reach_test.cpp.o"
  "CMakeFiles/reduction_reach_test.dir/tests/reduction_reach_test.cpp.o.d"
  "reduction_reach_test"
  "reduction_reach_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduction_reach_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
