# Empty dependencies file for reduction_reach_test.
# This may be replaced when dependencies are built.
