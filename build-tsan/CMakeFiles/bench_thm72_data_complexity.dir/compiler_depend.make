# Empty compiler generated dependencies file for bench_thm72_data_complexity.
# This may be replaced when dependencies are built.
