file(REMOVE_RECURSE
  "CMakeFiles/bench_thm72_data_complexity.dir/bench/bench_thm72_data_complexity.cpp.o"
  "CMakeFiles/bench_thm72_data_complexity.dir/bench/bench_thm72_data_complexity.cpp.o.d"
  "bench_thm72_data_complexity"
  "bench_thm72_data_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm72_data_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
