file(REMOVE_RECURSE
  "CMakeFiles/axes_test.dir/tests/axes_test.cpp.o"
  "CMakeFiles/axes_test.dir/tests/axes_test.cpp.o.d"
  "axes_test"
  "axes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
