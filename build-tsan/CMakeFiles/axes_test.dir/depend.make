# Empty dependencies file for axes_test.
# This may be replaced when dependencies are built.
