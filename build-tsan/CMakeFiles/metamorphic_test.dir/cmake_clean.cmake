file(REMOVE_RECURSE
  "CMakeFiles/metamorphic_test.dir/tests/metamorphic_test.cpp.o"
  "CMakeFiles/metamorphic_test.dir/tests/metamorphic_test.cpp.o.d"
  "metamorphic_test"
  "metamorphic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metamorphic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
