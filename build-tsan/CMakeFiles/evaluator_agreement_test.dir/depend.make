# Empty dependencies file for evaluator_agreement_test.
# This may be replaced when dependencies are built.
