file(REMOVE_RECURSE
  "CMakeFiles/evaluator_agreement_test.dir/tests/evaluator_agreement_test.cpp.o"
  "CMakeFiles/evaluator_agreement_test.dir/tests/evaluator_agreement_test.cpp.o.d"
  "evaluator_agreement_test"
  "evaluator_agreement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaluator_agreement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
