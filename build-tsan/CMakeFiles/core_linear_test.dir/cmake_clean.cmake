file(REMOVE_RECURSE
  "CMakeFiles/core_linear_test.dir/tests/core_linear_test.cpp.o"
  "CMakeFiles/core_linear_test.dir/tests/core_linear_test.cpp.o.d"
  "core_linear_test"
  "core_linear_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_linear_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
