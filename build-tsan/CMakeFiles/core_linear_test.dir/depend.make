# Empty dependencies file for core_linear_test.
# This may be replaced when dependencies are built.
