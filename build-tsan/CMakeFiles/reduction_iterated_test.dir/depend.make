# Empty dependencies file for reduction_iterated_test.
# This may be replaced when dependencies are built.
