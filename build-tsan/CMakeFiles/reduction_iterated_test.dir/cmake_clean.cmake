file(REMOVE_RECURSE
  "CMakeFiles/reduction_iterated_test.dir/tests/reduction_iterated_test.cpp.o"
  "CMakeFiles/reduction_iterated_test.dir/tests/reduction_iterated_test.cpp.o.d"
  "reduction_iterated_test"
  "reduction_iterated_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduction_iterated_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
