# Empty compiler generated dependencies file for bench_fig2_carry_circuit.
# This may be replaced when dependencies are built.
