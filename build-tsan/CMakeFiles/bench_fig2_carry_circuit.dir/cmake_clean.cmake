file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_carry_circuit.dir/bench/bench_fig2_carry_circuit.cpp.o"
  "CMakeFiles/bench_fig2_carry_circuit.dir/bench/bench_fig2_carry_circuit.cpp.o.d"
  "bench_fig2_carry_circuit"
  "bench_fig2_carry_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_carry_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
