# Empty dependencies file for gkx.
# This may be replaced when dependencies are built.
