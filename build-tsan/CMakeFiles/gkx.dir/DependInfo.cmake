
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/rng.cpp" "CMakeFiles/gkx.dir/src/base/rng.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/base/rng.cpp.o.d"
  "/root/repo/src/base/status.cpp" "CMakeFiles/gkx.dir/src/base/status.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/base/status.cpp.o.d"
  "/root/repo/src/base/string_util.cpp" "CMakeFiles/gkx.dir/src/base/string_util.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/base/string_util.cpp.o.d"
  "/root/repo/src/base/thread_pool.cpp" "CMakeFiles/gkx.dir/src/base/thread_pool.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/base/thread_pool.cpp.o.d"
  "/root/repo/src/circuits/circuit.cpp" "CMakeFiles/gkx.dir/src/circuits/circuit.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/circuits/circuit.cpp.o.d"
  "/root/repo/src/circuits/generators.cpp" "CMakeFiles/gkx.dir/src/circuits/generators.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/circuits/generators.cpp.o.d"
  "/root/repo/src/eval/axes.cpp" "CMakeFiles/gkx.dir/src/eval/axes.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/eval/axes.cpp.o.d"
  "/root/repo/src/eval/core_linear_evaluator.cpp" "CMakeFiles/gkx.dir/src/eval/core_linear_evaluator.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/eval/core_linear_evaluator.cpp.o.d"
  "/root/repo/src/eval/cvt_evaluator.cpp" "CMakeFiles/gkx.dir/src/eval/cvt_evaluator.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/eval/cvt_evaluator.cpp.o.d"
  "/root/repo/src/eval/decision.cpp" "CMakeFiles/gkx.dir/src/eval/decision.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/eval/decision.cpp.o.d"
  "/root/repo/src/eval/engine.cpp" "CMakeFiles/gkx.dir/src/eval/engine.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/eval/engine.cpp.o.d"
  "/root/repo/src/eval/evaluator.cpp" "CMakeFiles/gkx.dir/src/eval/evaluator.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/eval/evaluator.cpp.o.d"
  "/root/repo/src/eval/parallel_evaluator.cpp" "CMakeFiles/gkx.dir/src/eval/parallel_evaluator.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/eval/parallel_evaluator.cpp.o.d"
  "/root/repo/src/eval/pda_evaluator.cpp" "CMakeFiles/gkx.dir/src/eval/pda_evaluator.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/eval/pda_evaluator.cpp.o.d"
  "/root/repo/src/eval/pf_evaluator.cpp" "CMakeFiles/gkx.dir/src/eval/pf_evaluator.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/eval/pf_evaluator.cpp.o.d"
  "/root/repo/src/eval/recursive_base.cpp" "CMakeFiles/gkx.dir/src/eval/recursive_base.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/eval/recursive_base.cpp.o.d"
  "/root/repo/src/eval/value.cpp" "CMakeFiles/gkx.dir/src/eval/value.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/eval/value.cpp.o.d"
  "/root/repo/src/graphs/digraph.cpp" "CMakeFiles/gkx.dir/src/graphs/digraph.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/graphs/digraph.cpp.o.d"
  "/root/repo/src/reductions/circuit_to_core_xpath.cpp" "CMakeFiles/gkx.dir/src/reductions/circuit_to_core_xpath.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/reductions/circuit_to_core_xpath.cpp.o.d"
  "/root/repo/src/reductions/circuit_to_iterated_pwf.cpp" "CMakeFiles/gkx.dir/src/reductions/circuit_to_iterated_pwf.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/reductions/circuit_to_iterated_pwf.cpp.o.d"
  "/root/repo/src/reductions/reach_to_pf.cpp" "CMakeFiles/gkx.dir/src/reductions/reach_to_pf.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/reductions/reach_to_pf.cpp.o.d"
  "/root/repo/src/reductions/sac_to_positive_core.cpp" "CMakeFiles/gkx.dir/src/reductions/sac_to_positive_core.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/reductions/sac_to_positive_core.cpp.o.d"
  "/root/repo/src/service/document_store.cpp" "CMakeFiles/gkx.dir/src/service/document_store.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/service/document_store.cpp.o.d"
  "/root/repo/src/service/indexed_path.cpp" "CMakeFiles/gkx.dir/src/service/indexed_path.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/service/indexed_path.cpp.o.d"
  "/root/repo/src/service/plan_cache.cpp" "CMakeFiles/gkx.dir/src/service/plan_cache.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/service/plan_cache.cpp.o.d"
  "/root/repo/src/service/query_service.cpp" "CMakeFiles/gkx.dir/src/service/query_service.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/service/query_service.cpp.o.d"
  "/root/repo/src/testkit/oracle.cpp" "CMakeFiles/gkx.dir/src/testkit/oracle.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/testkit/oracle.cpp.o.d"
  "/root/repo/src/testkit/soak_driver.cpp" "CMakeFiles/gkx.dir/src/testkit/soak_driver.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/testkit/soak_driver.cpp.o.d"
  "/root/repo/src/testkit/workload.cpp" "CMakeFiles/gkx.dir/src/testkit/workload.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/testkit/workload.cpp.o.d"
  "/root/repo/src/xml/auction.cpp" "CMakeFiles/gkx.dir/src/xml/auction.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/xml/auction.cpp.o.d"
  "/root/repo/src/xml/builder.cpp" "CMakeFiles/gkx.dir/src/xml/builder.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/xml/builder.cpp.o.d"
  "/root/repo/src/xml/document.cpp" "CMakeFiles/gkx.dir/src/xml/document.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/xml/document.cpp.o.d"
  "/root/repo/src/xml/generator.cpp" "CMakeFiles/gkx.dir/src/xml/generator.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/xml/generator.cpp.o.d"
  "/root/repo/src/xml/index.cpp" "CMakeFiles/gkx.dir/src/xml/index.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/xml/index.cpp.o.d"
  "/root/repo/src/xml/parser.cpp" "CMakeFiles/gkx.dir/src/xml/parser.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/xml/parser.cpp.o.d"
  "/root/repo/src/xml/serializer.cpp" "CMakeFiles/gkx.dir/src/xml/serializer.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/xml/serializer.cpp.o.d"
  "/root/repo/src/xpath/analysis.cpp" "CMakeFiles/gkx.dir/src/xpath/analysis.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/xpath/analysis.cpp.o.d"
  "/root/repo/src/xpath/ast.cpp" "CMakeFiles/gkx.dir/src/xpath/ast.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/xpath/ast.cpp.o.d"
  "/root/repo/src/xpath/build.cpp" "CMakeFiles/gkx.dir/src/xpath/build.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/xpath/build.cpp.o.d"
  "/root/repo/src/xpath/dot.cpp" "CMakeFiles/gkx.dir/src/xpath/dot.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/xpath/dot.cpp.o.d"
  "/root/repo/src/xpath/fragment.cpp" "CMakeFiles/gkx.dir/src/xpath/fragment.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/xpath/fragment.cpp.o.d"
  "/root/repo/src/xpath/generator.cpp" "CMakeFiles/gkx.dir/src/xpath/generator.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/xpath/generator.cpp.o.d"
  "/root/repo/src/xpath/lexer.cpp" "CMakeFiles/gkx.dir/src/xpath/lexer.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/xpath/lexer.cpp.o.d"
  "/root/repo/src/xpath/optimize.cpp" "CMakeFiles/gkx.dir/src/xpath/optimize.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/xpath/optimize.cpp.o.d"
  "/root/repo/src/xpath/parser.cpp" "CMakeFiles/gkx.dir/src/xpath/parser.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/xpath/parser.cpp.o.d"
  "/root/repo/src/xpath/printer.cpp" "CMakeFiles/gkx.dir/src/xpath/printer.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/xpath/printer.cpp.o.d"
  "/root/repo/src/xpath/transform.cpp" "CMakeFiles/gkx.dir/src/xpath/transform.cpp.o" "gcc" "CMakeFiles/gkx.dir/src/xpath/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
