file(REMOVE_RECURSE
  "libgkx.a"
)
