# Empty compiler generated dependencies file for example_circuit_solver.
# This may be replaced when dependencies are built.
