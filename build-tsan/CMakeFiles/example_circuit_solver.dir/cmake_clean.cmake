file(REMOVE_RECURSE
  "CMakeFiles/example_circuit_solver.dir/examples/circuit_solver.cpp.o"
  "CMakeFiles/example_circuit_solver.dir/examples/circuit_solver.cpp.o.d"
  "example_circuit_solver"
  "example_circuit_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_circuit_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
