file(REMOVE_RECURSE
  "CMakeFiles/bench_prop27_linear.dir/bench/bench_prop27_linear.cpp.o"
  "CMakeFiles/bench_prop27_linear.dir/bench/bench_prop27_linear.cpp.o.d"
  "bench_prop27_linear"
  "bench_prop27_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop27_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
