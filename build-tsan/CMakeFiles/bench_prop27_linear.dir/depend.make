# Empty dependencies file for bench_prop27_linear.
# This may be replaced when dependencies are built.
