file(REMOVE_RECURSE
  "CMakeFiles/pda_evaluator_test.dir/tests/pda_evaluator_test.cpp.o"
  "CMakeFiles/pda_evaluator_test.dir/tests/pda_evaluator_test.cpp.o.d"
  "pda_evaluator_test"
  "pda_evaluator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pda_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
