# Empty dependencies file for pda_evaluator_test.
# This may be replaced when dependencies are built.
