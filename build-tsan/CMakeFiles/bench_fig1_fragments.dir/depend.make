# Empty dependencies file for bench_fig1_fragments.
# This may be replaced when dependencies are built.
