file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_fragments.dir/bench/bench_fig1_fragments.cpp.o"
  "CMakeFiles/bench_fig1_fragments.dir/bench/bench_fig1_fragments.cpp.o.d"
  "bench_fig1_fragments"
  "bench_fig1_fragments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_fragments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
