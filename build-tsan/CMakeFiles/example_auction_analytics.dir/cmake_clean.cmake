file(REMOVE_RECURSE
  "CMakeFiles/example_auction_analytics.dir/examples/auction_analytics.cpp.o"
  "CMakeFiles/example_auction_analytics.dir/examples/auction_analytics.cpp.o.d"
  "example_auction_analytics"
  "example_auction_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_auction_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
