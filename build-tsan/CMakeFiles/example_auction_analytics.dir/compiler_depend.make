# Empty compiler generated dependencies file for example_auction_analytics.
# This may be replaced when dependencies are built.
