file(REMOVE_RECURSE
  "CMakeFiles/xml_document_test.dir/tests/xml_document_test.cpp.o"
  "CMakeFiles/xml_document_test.dir/tests/xml_document_test.cpp.o.d"
  "xml_document_test"
  "xml_document_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_document_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
