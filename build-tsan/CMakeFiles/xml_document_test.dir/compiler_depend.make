# Empty compiler generated dependencies file for xml_document_test.
# This may be replaced when dependencies are built.
