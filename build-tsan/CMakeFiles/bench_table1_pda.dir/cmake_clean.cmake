file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_pda.dir/bench/bench_table1_pda.cpp.o"
  "CMakeFiles/bench_table1_pda.dir/bench/bench_table1_pda.cpp.o.d"
  "bench_table1_pda"
  "bench_table1_pda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_pda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
