file(REMOVE_RECURSE
  "CMakeFiles/xpath_parser_test.dir/tests/xpath_parser_test.cpp.o"
  "CMakeFiles/xpath_parser_test.dir/tests/xpath_parser_test.cpp.o.d"
  "xpath_parser_test"
  "xpath_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpath_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
