file(REMOVE_RECURSE
  "CMakeFiles/generator_stability_test.dir/tests/generator_stability_test.cpp.o"
  "CMakeFiles/generator_stability_test.dir/tests/generator_stability_test.cpp.o.d"
  "generator_stability_test"
  "generator_stability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generator_stability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
