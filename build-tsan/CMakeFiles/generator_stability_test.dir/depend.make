# Empty dependencies file for generator_stability_test.
# This may be replaced when dependencies are built.
