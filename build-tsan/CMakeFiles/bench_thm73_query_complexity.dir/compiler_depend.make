# Empty compiler generated dependencies file for bench_thm73_query_complexity.
# This may be replaced when dependencies are built.
