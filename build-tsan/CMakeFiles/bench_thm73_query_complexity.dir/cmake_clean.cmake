file(REMOVE_RECURSE
  "CMakeFiles/bench_thm73_query_complexity.dir/bench/bench_thm73_query_complexity.cpp.o"
  "CMakeFiles/bench_thm73_query_complexity.dir/bench/bench_thm73_query_complexity.cpp.o.d"
  "bench_thm73_query_complexity"
  "bench_thm73_query_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm73_query_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
