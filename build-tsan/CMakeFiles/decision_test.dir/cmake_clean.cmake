file(REMOVE_RECURSE
  "CMakeFiles/decision_test.dir/tests/decision_test.cpp.o"
  "CMakeFiles/decision_test.dir/tests/decision_test.cpp.o.d"
  "decision_test"
  "decision_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decision_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
