file(REMOVE_RECURSE
  "CMakeFiles/xml_fuzz_test.dir/tests/xml_fuzz_test.cpp.o"
  "CMakeFiles/xml_fuzz_test.dir/tests/xml_fuzz_test.cpp.o.d"
  "xml_fuzz_test"
  "xml_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
