# Empty compiler generated dependencies file for bench_thm59_bounded_negation.
# This may be replaced when dependencies are built.
