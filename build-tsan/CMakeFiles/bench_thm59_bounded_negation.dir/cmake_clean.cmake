file(REMOVE_RECURSE
  "CMakeFiles/bench_thm59_bounded_negation.dir/bench/bench_thm59_bounded_negation.cpp.o"
  "CMakeFiles/bench_thm59_bounded_negation.dir/bench/bench_thm59_bounded_negation.cpp.o.d"
  "bench_thm59_bounded_negation"
  "bench_thm59_bounded_negation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm59_bounded_negation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
