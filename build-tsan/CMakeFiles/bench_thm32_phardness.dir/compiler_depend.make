# Empty compiler generated dependencies file for bench_thm32_phardness.
# This may be replaced when dependencies are built.
