file(REMOVE_RECURSE
  "CMakeFiles/bench_thm32_phardness.dir/bench/bench_thm32_phardness.cpp.o"
  "CMakeFiles/bench_thm32_phardness.dir/bench/bench_thm32_phardness.cpp.o.d"
  "bench_thm32_phardness"
  "bench_thm32_phardness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm32_phardness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
