// Graph reachability with predicate-free XPath — the Theorem 4.3 / Figure 5
// reduction as an application: a directed graph becomes a "caterpillar"
// document whose spine depth encodes vertex identity, and an n-hop
// child/parent/descendant tower decides reachability.
//
//   ./example_graph_reachability [n] [edge_probability]

#include <cstdio>
#include <cstdlib>

#include "eval/core_linear_evaluator.hpp"
#include "graphs/digraph.hpp"
#include "reductions/reach_to_pf.hpp"
#include "xpath/printer.hpp"

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 6;
  const double p = argc > 2 ? std::atof(argv[2]) : 0.25;
  if (n < 2 || n > 20) {
    std::fprintf(stderr, "n must be in 2..20\n");
    return 1;
  }

  gkx::Rng rng(4);
  gkx::graphs::Digraph graph = gkx::graphs::RandomDigraph(&rng, n, p);
  std::printf("random digraph: %d vertices, %lld edges\n", n,
              static_cast<long long>(graph.num_edges()));
  for (int32_t u = 0; u < n; ++u) {
    for (int32_t v : graph.OutEdges(u)) std::printf("  %d -> %d\n", u, v);
  }

  gkx::graphs::Digraph with_loops = graph;
  with_loops.AddSelfLoops();
  gkx::xml::Document doc = gkx::reductions::ReachabilityDocument(with_loops);
  std::printf("\nencoded document: %lld nodes, depth %d\n",
              static_cast<long long>(doc.Stats().node_count),
              doc.Stats().max_depth);

  gkx::xpath::Query example = gkx::reductions::ReachabilityQuery(n, 0, n - 1);
  std::printf("PF query for 0 ->* %d (%d steps, no predicates):\n  %.120s...\n\n",
              n - 1, example.num_steps(),
              gkx::xpath::ToXPathString(example).c_str());

  gkx::eval::CoreLinearEvaluator engine;
  std::printf("reachability matrix via XPath (rows: from, columns: to)\n");
  int mismatches = 0;
  for (int32_t u = 0; u < n; ++u) {
    std::printf("  %2d: ", u);
    for (int32_t v = 0; v < n; ++v) {
      gkx::xpath::Query query = gkx::reductions::ReachabilityQuery(n, u, v);
      auto nodes = engine.EvaluateNodeSet(doc, query);
      GKX_CHECK(nodes.ok());
      const bool via_xpath = !nodes->empty();
      const bool via_bfs = gkx::graphs::IsReachable(graph, u, v);
      if (via_xpath != via_bfs) ++mismatches;
      std::printf("%c", via_xpath ? '1' : '.');
    }
    std::printf("\n");
  }
  std::printf("\nmismatches against BFS: %d\n", mismatches);
  return mismatches == 0 ? 0 : 1;
}
