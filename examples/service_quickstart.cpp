// The serving layer in five minutes: register documents, submit single
// queries and a mixed batch, patch a document with a subtree edit, read
// the stats the service keeps for you.
//
//   ./example_service_quickstart

#include <cstdio>

#include "service/query_service.hpp"
#include "xml/edit.hpp"
#include "xml/parser.hpp"

int main() {
  gkx::service::QueryService service;

  GKX_CHECK(service
                .RegisterXml("store",
                             "<inventory>"
                             "  <book genre='cs'><title>AI</title></book>"
                             "  <book genre='db'><title>XPath</title></book>"
                             "  <cd><title>Goldberg</title></cd>"
                             "</inventory>")
                .ok());
  GKX_CHECK(service
                .RegisterXml("org",
                             "<org><team><eng/><eng/></team>"
                             "<team><eng/><sales/></team></org>")
                .ok());

  // Single submits. The first compiles and caches a plan; the repeat hits.
  auto titles = service.Submit("store", "//book/child::title");
  GKX_CHECK(titles.ok());
  std::printf("//book/child::title -> %s via %s\n",
              titles->value.DebugString().c_str(), titles->evaluator.c_str());
  GKX_CHECK(service.Submit("store", "//book/child::title").ok());

  // A mixed batch, fanned out over the shared thread pool. Requests fail
  // independently: the bad key poisons nothing.
  auto batch = service.SubmitBatch({
      {"store", "//book/child::title"},
      {"store", "/descendant::book[child::title]"},
      {"org", "count(/descendant::eng)"},
      {"nope", "//anything"},
  });
  for (size_t i = 0; i < batch.size(); ++i) {
    std::printf("batch[%zu]: %s\n", i,
                batch[i].ok() ? batch[i]->value.DebugString().c_str()
                              : batch[i].status().ToString().c_str());
  }

  // Mutation as a subtree patch: splice a third <book> under <inventory>
  // (node 0) instead of re-sending the whole document. Cached answers
  // whose footprints never mention the edited region's names survive the
  // update (answer_cache.retained below); //book entries re-evaluate.
  gkx::xml::SubtreeEdit edit;
  edit.kind = gkx::xml::SubtreeEdit::Kind::kInsertSubtree;
  edit.target = 0;
  edit.position = 2;  // between the second book and the cd
  edit.subtree = *gkx::xml::ParseDocument(
      "<book genre='pl'><title>Datalog</title></book>");
  GKX_CHECK(service.UpdateDocument("store", edit).ok());
  auto patched = service.Submit("store", "count(/descendant::book)");
  GKX_CHECK(patched.ok());
  std::printf("after patch: count(/descendant::book) -> %s\n",
              patched->value.DebugString().c_str());

  // Service-level observability.
  gkx::service::ServiceStats stats = service.Stats();
  std::printf("\nrequests=%lld failures=%lld documents=%zu\n",
              static_cast<long long>(stats.requests),
              static_cast<long long>(stats.failures), stats.documents);
  std::printf("plan cache: hits=%lld canonical=%lld misses=%lld (rate %.2f)\n",
              static_cast<long long>(stats.plan_cache.hits),
              static_cast<long long>(stats.plan_cache.canonical_hits),
              static_cast<long long>(stats.plan_cache.misses),
              stats.plan_cache.HitRate());
  for (const auto& [evaluator, count] : stats.evaluator_counts) {
    std::printf("  %-12s %lld answers\n", evaluator.c_str(),
                static_cast<long long>(count));
  }
  std::printf("latency: p50=%.3fms p99=%.3fms over %lld requests\n",
              stats.latency.p50_ms, stats.latency.p99_ms,
              static_cast<long long>(stats.latency.count));
  return 0;
}
