// Quickstart: parse an XML document, run XPath queries through the Engine
// facade (which classifies each query against the paper's fragment taxonomy
// and dispatches the matching evaluation algorithm), and print the results.
//
//   ./example_quickstart                # built-in document and queries
//   ./example_quickstart doc.xml 'query1' 'query2' ...

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "eval/engine.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"

namespace {

constexpr const char* kDefaultXml = R"(<library>
  <shelf genre="theory">
    <book year="1994"><title>Computational Complexity</title></book>
    <book year="1995"><title>Limits to Parallel Computation</title></book>
  </shelf>
  <shelf genre="databases">
    <book year="1999"><title>XML Path Language</title></book>
  </shelf>
</library>)";

const char* kDefaultQueries[] = {
    "/descendant::book/child::title",
    "/descendant::shelf[child::book/child::title]",
    "/descendant::book[position() = last()]",
    "count(/descendant::book)",
    "/descendant::shelf[not(child::book[2])]",
    "string(/descendant::title)",
};

}  // namespace

int main(int argc, char** argv) {
  std::string xml = kDefaultXml;
  std::vector<std::string> queries;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    xml = buffer.str();
    for (int i = 2; i < argc; ++i) queries.emplace_back(argv[i]);
  }
  if (queries.empty()) {
    for (const char* q : kDefaultQueries) queries.emplace_back(q);
  }

  auto doc = gkx::xml::ParseDocument(xml);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  std::printf("document: %d element nodes, depth %d\n\n", doc->size(),
              doc->Stats().max_depth);

  gkx::eval::Engine engine;
  for (const std::string& text : queries) {
    auto answer = engine.Run(*doc, text);
    if (!answer.ok()) {
      std::printf("query:    %s\n  error: %s\n\n", text.c_str(),
                  answer.status().ToString().c_str());
      continue;
    }
    std::printf("query:    %s\n", text.c_str());
    std::printf("fragment: %s  —  %s\n",
                std::string(gkx::xpath::FragmentName(answer->fragment.smallest))
                    .c_str(),
                std::string(gkx::xpath::FragmentComplexity(
                                answer->fragment.smallest))
                    .c_str());
    std::printf("engine:   %s\n", answer->evaluator.c_str());
    if (answer->value.is_node_set()) {
      std::printf("result:   %zu node(s)\n", answer->value.nodes().size());
      for (gkx::xml::NodeId v : answer->value.nodes()) {
        std::printf("  <%s>  string-value: \"%s\"\n",
                    std::string(doc->TagName(v)).c_str(),
                    doc->StringValue(v).c_str());
      }
    } else {
      std::printf("result:   %s\n", answer->value.DebugString().c_str());
    }
    std::printf("\n");
  }
  return 0;
}
