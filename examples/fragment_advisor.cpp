// Fragment advisor: classify XPath queries against the paper's Figure 1
// taxonomy, report the combined complexity of their fragment, explain which
// restrictions they violate, and suggest rewrites (Remark 5.2 normalization,
// Theorem 5.9 negation pushdown) that move them into cheaper fragments.
//
//   ./example_fragment_advisor 'query1' 'query2' ...     (or no args: demo)

#include <cstdio>
#include <string>
#include <vector>

#include "xpath/fragment.hpp"
#include "xpath/optimize.hpp"
#include "xpath/parser.hpp"
#include "xpath/printer.hpp"
#include "xpath/transform.hpp"

namespace {

void Advise(const std::string& text) {
  std::printf("query: %s\n", text.c_str());
  auto query = gkx::xpath::ParseQuery(text);
  if (!query.ok()) {
    std::printf("  %s\n\n", query.status().ToString().c_str());
    return;
  }
  gkx::xpath::FragmentReport report = gkx::xpath::Classify(*query);
  std::printf("  smallest fragment:   %s\n",
              std::string(gkx::xpath::FragmentName(report.smallest)).c_str());
  std::printf("  combined complexity: %s\n",
              std::string(gkx::xpath::FragmentComplexity(report.smallest))
                  .c_str());
  for (const std::string& note : report.notes) {
    std::printf("  note: %s\n", note.c_str());
  }

  // Suggest rewrites if they lower the fragment.
  gkx::xpath::Query normalized = gkx::xpath::NormalizeIteratedPredicates(*query);
  gkx::xpath::FragmentReport normalized_report = gkx::xpath::Classify(normalized);
  if (normalized_report.smallest < report.smallest) {
    std::printf("  rewrite (Remark 5.2, fold iterated predicates):\n    %s\n"
                "    -> now in %s\n",
                gkx::xpath::ToXPathString(normalized).c_str(),
                std::string(gkx::xpath::FragmentName(normalized_report.smallest))
                    .c_str());
  }
  gkx::xpath::Query pushed = gkx::xpath::PushNegationsDown(*query);
  gkx::xpath::FragmentReport pushed_report = gkx::xpath::Classify(pushed);
  if (pushed_report.smallest < report.smallest) {
    std::printf("  rewrite (Theorem 5.9, push negations down):\n    %s\n"
                "    -> now in %s\n",
                gkx::xpath::ToXPathString(pushed).c_str(),
                std::string(gkx::xpath::FragmentName(pushed_report.smallest))
                    .c_str());
  }
  gkx::xpath::OptimizeStats stats;
  gkx::xpath::Query optimized = gkx::xpath::Optimize(*query, &stats);
  if (stats.Total() > 0) {
    std::printf("  simplification (%d rewrites): %s\n", stats.Total(),
                gkx::xpath::ToXPathString(optimized).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> queries;
  for (int i = 1; i < argc; ++i) queries.emplace_back(argv[i]);
  if (queries.empty()) {
    queries = {
        "/descendant::a/child::b",
        "child::a[descendant::c and not(following-sibling::d)]",
        "child::a[position() + 1 = last()]",
        "a[b][c]",
        "a[not(position() = 2)]",
        "a[count(child::b) >= 2]",
        "a[boolean(b) = true()]",
    };
  }
  for (const std::string& text : queries) Advise(text);
  return 0;
}
