// Solving circuits with an XPath engine — the Theorem 3.2 reduction as a
// (deliberately absurd) application: a monotone boolean circuit is compiled
// into a depth-2 XML document plus a Core XPath query whose answer is
// non-empty exactly when the circuit accepts. Demonstrated on the paper's
// Figure 2 carry-bit circuit.
//
//   ./example_circuit_solver [bits]   (default 2 — the paper's example)

#include <cstdio>
#include <cstdlib>

#include "circuits/generators.hpp"
#include "eval/core_linear_evaluator.hpp"
#include "reductions/circuit_to_core_xpath.hpp"
#include "xml/serializer.hpp"
#include "xpath/printer.hpp"

int main(int argc, char** argv) {
  const int bits = argc > 1 ? std::atoi(argv[1]) : 2;
  if (bits < 1 || bits > 5) {
    std::fprintf(stderr, "bits must be in 1..5\n");
    return 1;
  }

  gkx::circuits::Circuit circuit = gkx::circuits::CarryCircuit(bits);
  std::printf("carry circuit for %d-bit addition: M=%d inputs, N=%d gates\n\n",
              bits, circuit.num_inputs(), circuit.num_logic_gates());
  std::printf("%s\n", circuit.ToDot().c_str());

  // Show one full reduction instance.
  std::vector<bool> demo(static_cast<size_t>(2 * bits), true);
  gkx::reductions::CircuitReduction instance =
      gkx::reductions::CircuitToCoreXPath(circuit, demo);
  std::printf("encoded document (labels carry the gate wiring):\n%s\n",
              gkx::xml::SerializeDocument(instance.doc).c_str());
  std::printf("Core XPath query (|Q| = %d):\n%s\n\n", instance.query.size(),
              gkx::xpath::ToXPathString(instance.query).c_str());

  // Evaluate the whole truth table through XPath.
  gkx::eval::CoreLinearEvaluator engine;
  std::printf("truth table via XPath evaluation:\n");
  int correct = 0;
  const auto assignments = gkx::circuits::AllAssignments(2 * bits);
  for (const auto& assignment : assignments) {
    gkx::reductions::CircuitReduction reduction =
        gkx::reductions::CircuitToCoreXPath(circuit, assignment);
    auto nodes = engine.EvaluateNodeSet(reduction.doc, reduction.query);
    GKX_CHECK(nodes.ok());
    const bool via_xpath = !nodes->empty();
    const bool direct = circuit.Evaluate(assignment);
    if (via_xpath == direct) ++correct;
    if (assignments.size() <= 16) {
      std::printf("  inputs:");
      for (bool b : assignment) std::printf(" %d", b ? 1 : 0);
      std::printf("  ->  xpath: %d, direct: %d %s\n", via_xpath, direct,
                  via_xpath == direct ? "" : "  << MISMATCH");
    }
  }
  std::printf("\nverified %d/%zu assignments\n", correct, assignments.size());
  return correct == static_cast<int>(assignments.size()) ? 0 : 1;
}
