// A realistic workload: analytics over an XMark-style auction-site document
// using queries from different fragments of the Figure 1 landscape. Shows
// how the fragment a query lives in — not just the document size — drives
// which algorithm the engine picks and what that costs.
//
//   ./example_auction_analytics [items] [auctions]

#include <cstdio>
#include <cstdlib>

#include "base/stopwatch.hpp"
#include "eval/engine.hpp"
#include "xml/auction.hpp"

int main(int argc, char** argv) {
  gkx::xml::AuctionOptions options;
  if (argc > 1) options.items = std::atoi(argv[1]);
  if (argc > 2) options.open_auctions = std::atoi(argv[2]);
  options.people = options.items;

  gkx::Rng rng(2003);
  gkx::xml::Document site = gkx::xml::AuctionDocument(&rng, options);
  std::printf("auction site: %d nodes (items=%d, auctions=%d)\n\n", site.size(),
              options.items, options.open_auctions);

  struct NamedQuery {
    const char* question;
    const char* query;
  };
  const NamedQuery workload[] = {
      {"all item names (PF)", "/descendant::item/child::name"},
      {"items that belong to some category (pos. Core)",
       "/descendant::item[child::incategory]"},
      {"auctions with no bids yet (Core, negation)",
       "/descendant::open_auction[not(child::bid)]"},
      {"the last bid of every auction (pWF)",
       "/descendant::open_auction/child::bid[last()]"},
      {"auctions with at least 3 bids (pWF: positional)",
       "/descendant::open_auction/child::bid[3]/parent::*"},
      {"expensive items, price > 80 (pXPath-style comparison)",
       "/descendant::item[child::price > 80]"},
      {"auctions whose current price exceeds twice the first bid (WF-ish)",
       "/descendant::open_auction[child::current > 2 * 1 and child::bid]"},
      {"number of bids across all auctions (full XPath)",
       "count(/descendant::bid)"},
      {"total of all current prices (full XPath)",
       "sum(/descendant::current)"},
  };

  gkx::eval::Engine engine;
  for (const NamedQuery& entry : workload) {
    gkx::Stopwatch sw;
    auto answer = engine.Run(site, entry.query);
    const double ms = sw.ElapsedMillis();
    if (!answer.ok()) {
      std::printf("%-60s ERROR %s\n", entry.question,
                  answer.status().ToString().c_str());
      continue;
    }
    std::string result =
        answer->value.is_node_set()
            ? std::to_string(answer->value.nodes().size()) + " nodes"
            : answer->value.DebugString();
    std::printf("%s\n  query:    %s\n  fragment: %s  engine: %s\n"
                "  result:   %s   (%.3f ms)\n\n",
                entry.question, entry.query,
                std::string(
                    gkx::xpath::FragmentName(answer->fragment.smallest))
                    .c_str(),
                answer->evaluator.c_str(), result.c_str(), ms);
  }
  return 0;
}
